//! The liquid-inference fixpoint solver (predicate abstraction by iterative
//! weakening), as described in §4.2 of the paper and in Rondon et al. 2008.
//!
//! Each κ variable starts with the conjunction of *all* well-sorted
//! qualifier instantiations.  Clauses whose head is a κ application then
//! repeatedly *weaken* that candidate set: any conjunct not implied by the
//! clause's hypotheses (under the current assignment) is removed.  When no
//! more weakening is possible the assignment is the strongest solution
//! expressible with the qualifiers; the remaining clauses with concrete
//! heads are then checked once, and any failure is reported with its tag.
//!
//! # Parallel weakening
//!
//! Clauses interact only through the κ variables they mention, so the
//! clause set decomposes into κ-dependency components ([`crate::partition`])
//! that weaken independently.  With [`FixConfig::threads`] > 1 each
//! component runs its own weakening loop on a scoped worker thread (a
//! hand-rolled atomic work queue — the environment has no external crates),
//! against its own private slice of the assignment; the final concrete-head
//! checks, which only *read* the converged assignment, are likewise spread
//! across workers.  Verdicts and the final [`Solution`] are identical to
//! sequential mode: within a component the visit order is exactly the
//! sequential clause order, across components there is no interaction at
//! all, and the weakening fixpoint is confluent besides (candidates are only
//! ever dropped when refuted, and the greatest inductive subset of the
//! initial candidates is unique).  `threads = 1` bypasses the partitioned
//! scheduler entirely and reproduces the historical single-loop engine
//! bit for bit, statistics included.

use crate::cache::{
    global_cache, intern_fn_ctx, next_epoch, next_owner, CacheEntry, FnCtxId, QueryKey,
    ValidityCache,
};
use crate::constraint::{Clause, Constraint, Guard, Head, Tag};
use crate::kvar::{KVarApp, KVarStore, KVid};
use crate::partition::{partition, Partition};
use crate::qualifier::{default_qualifiers, Qualifier};
use flux_logic::{
    hcons_memo_evictions, lock_recover, AlphaRenamer, Expr, ExprId, Name, Sort, SortCtx,
};
use flux_smt::{Model, Session, SmtConfig, SmtStats, Solver, Validity};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The default worker-thread count of [`FixConfig`]: the `FLUX_THREADS`
/// environment variable when set (clamped to at least 1), otherwise the
/// machine's available parallelism.
///
/// A set-but-unparsable `FLUX_THREADS` falls back to **1**, not to the
/// machine's parallelism, and warns on stderr: the variable exists to pin
/// runs to the sequential engine (CI runs the suite under
/// `FLUX_THREADS=1`), so a typo must never silently promote such a run to
/// the parallel scheduler.  An empty value counts as unset.
pub fn default_threads() -> usize {
    // Deliberately NOT cached in a process-global `OnceLock`: long-running
    // callers (`fluxd`'s `reload`, tests that sweep thread counts) re-read
    // the environment and must observe changes.  The cost is one env read
    // and possibly one parallelism syscall per `FixConfig::default()` —
    // noise next to constructing the qualifier set in the same default.
    match std::env::var("FLUX_THREADS") {
        // Set (and non-empty): parse through the shared warn-and-default
        // helper.  The fallback is **1**, not the machine's parallelism —
        // the variable exists to pin runs to the sequential engine, so a
        // typo must never silently promote such a run to the parallel
        // scheduler.
        Ok(raw) if !raw.trim().is_empty() => flux_logic::env_parse("FLUX_THREADS", 1usize).max(1),
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Snapshot of the process-global shard-lock contention counters (validity
/// shards, CNF shards, hcons interner); solves difference it to attribute
/// contention to a solve, mirroring `observed_evictions`.
fn observed_contentions() -> u64 {
    crate::cache::validity_shard_contentions()
        + flux_smt::cnf_shard_contentions()
        + flux_logic::hcons_contentions()
}

/// Configuration of the fixpoint solver.
#[derive(Clone, Debug)]
pub struct FixConfig {
    /// Configuration forwarded to the SMT solver.
    pub smt: SmtConfig,
    /// Safety bound on weakening iterations.
    pub max_iterations: usize,
    /// The qualifier templates used to seed candidate solutions.
    pub qualifiers: Vec<Qualifier>,
    /// Use the incremental query engine: one solver session per clause per
    /// iteration plus the cross-iteration validity cache.  Disable to get
    /// the historical one-query-one-pipeline behaviour (kept for A/B
    /// testing and the ablation benches; verdicts are identical).
    pub incremental: bool,
    /// Weaken candidates by evaluating them under the solver's
    /// counter-models (Houdini-style) before falling back to one SMT query
    /// per candidate.  Disable for A/B testing; the resulting fixpoint — and
    /// hence every verdict and inferred invariant — is identical either
    /// way, only the number of SMT queries differs.
    pub model_pruning: bool,
    /// Share verdicts through the process-global validity cache, so
    /// identical obligations are proved once per *process* rather than once
    /// per program (`xbench_hits` counts the cross-benchmark replays).
    /// Disable for hermetic per-solver caching — equivalence tests that pin
    /// session/miss counts need isolation from whatever else the process
    /// has already proved; verdicts are identical either way because cached
    /// entries replay exactly what the engine would recompute.
    pub global_cache: bool,
    /// Worker threads for the partitioned weakening scheduler (see the
    /// module docs).  `1` reproduces the historical sequential engine
    /// exactly; the default is [`default_threads`] (the `FLUX_THREADS`
    /// environment variable, else the machine's parallelism).  Verdicts and
    /// solutions are thread-count-invariant.
    pub threads: usize,
    /// When a clause's depended-on κ weakens, *retract* the stale
    /// hypothesis conjuncts from the clause's live session (via
    /// [`Session::update_hypotheses`]) instead of discarding the session:
    /// the persistent CDCL core, its learned clauses and the simplex basis
    /// survive the weakening step.  Disable (or set `FLUX_LEGACY`) to get
    /// the historical discard-and-rebuild behaviour; verdicts and solutions
    /// are identical either way.
    pub retract_conjuncts: bool,
    /// Evaluate counter-models directly over the hash-consed expression DAG
    /// (memoized per query) instead of materializing tree forms of the
    /// candidates and hypotheses per clause version.  Disable (or set
    /// `FLUX_LEGACY`) for the historical tree evaluator; the two evaluators
    /// agree decision-for-decision, so the fixpoint is identical.
    pub dag_eval: bool,
}

impl Default for FixConfig {
    fn default() -> Self {
        let legacy = flux_smt::legacy_toggles();
        FixConfig {
            smt: SmtConfig::default(),
            max_iterations: 100,
            qualifiers: default_qualifiers(),
            incremental: true,
            model_pruning: true,
            global_cache: true,
            threads: default_threads(),
            retract_conjuncts: !legacy,
            dag_eval: !legacy,
        }
    }
}

/// Statistics of a solver run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FixStats {
    /// Number of clauses after flattening.
    pub clauses: usize,
    /// Number of κ variables.
    pub kvars: usize,
    /// Number of initial candidate conjuncts across all κ variables.
    pub initial_candidates: usize,
    /// Number of weakening iterations performed.  In parallel mode each
    /// component counts its own iterations and the totals are summed, so
    /// the figure is comparable to — but not identical with — the global
    /// iteration count of the sequential engine.
    pub iterations: usize,
    /// Number of SMT validity queries requested (including cache hits).
    pub smt_queries: usize,
    /// Queries answered from the validity cache.
    pub cache_hits: usize,
    /// Cache hits whose entry was produced by an *earlier* solve call on the
    /// same solver (cross-function sharing within one verification run).
    pub cross_fn_hits: usize,
    /// Cache hits whose entry was produced by a *different* solver instance
    /// (cross-benchmark sharing through the process-global cache).
    pub xbench_hits: usize,
    /// Queries that reached the SMT engine.
    pub cache_misses: usize,
    /// Solver sessions opened (at most one per clause per iteration; none
    /// for clauses fully answered by the cache).
    pub sessions: usize,
    /// Candidates dropped by evaluating them under a counter-model instead
    /// of issuing a per-candidate SMT query.
    pub model_prunes: usize,
    /// Worker-thread cap of the solve ([`FixConfig::threads`]); aggregated
    /// by maximum, so program totals report the configured parallelism.
    pub threads: usize,
    /// Number of independent κ-dependency components the clause set split
    /// into (an upper bound on usable weakening parallelism).
    pub partitions: usize,
    /// Well-formedness lint obligations checked (audit tier ≥ `lint`):
    /// concrete guards/heads, κ-application arguments and candidate bodies
    /// sort- and scope-checked before solving.
    pub lint_checks: usize,
    /// Clauses independently re-validated after convergence (audit tier
    /// `full`): the final solution substituted into the clause and recheck
    /// with a fresh one-shot solver bypassing every cache and session.
    pub revalidations: usize,
    /// Candidate conjuncts dropped because the solver answered `Unknown`
    /// rather than refuting them.  Dropping is sound for the weakening
    /// direction (the kept solution is still verified inductive), but a
    /// *failed* concrete check in the same solve can no longer be blamed on
    /// the program — see [`FixResult::Unknown`].  Always zero under the
    /// default unlimited budgets on the corpus.
    pub unknown_drops: usize,
    /// Cache entries evicted during this solve across the bounded global
    /// caches (hash-cons memos, CNF cache, validity cache), attributed by
    /// differencing the monotone global counters around the solve.  Zero
    /// unless a capacity cap (`FLUX_CACHE_CAP`) is set.
    pub evictions: usize,
    /// Times a thread found a process-global cache-shard lock (validity
    /// shards, CNF shards, hcons interner) held by another thread during
    /// this solve, attributed by differencing the monotone global counters
    /// around the solve.  A convoying diagnostic: zero in sequential runs,
    /// and under sharding it should stay near zero even at 8 threads.
    pub shard_contention: usize,
}

impl FixStats {
    /// Adds `other` into `self` field-wise (counters sum; the `threads` cap
    /// merges by maximum); used to aggregate per-worker statistics into a
    /// solve's totals and per-function statistics into program totals in
    /// `flux-check`.
    pub fn absorb(&mut self, other: &FixStats) {
        self.clauses += other.clauses;
        self.kvars += other.kvars;
        self.initial_candidates += other.initial_candidates;
        self.iterations += other.iterations;
        self.smt_queries += other.smt_queries;
        self.cache_hits += other.cache_hits;
        self.cross_fn_hits += other.cross_fn_hits;
        self.xbench_hits += other.xbench_hits;
        self.cache_misses += other.cache_misses;
        self.sessions += other.sessions;
        self.model_prunes += other.model_prunes;
        self.threads = self.threads.max(other.threads);
        self.partitions += other.partitions;
        self.lint_checks += other.lint_checks;
        self.revalidations += other.revalidations;
        self.unknown_drops += other.unknown_drops;
        self.evictions += other.evictions;
        self.shard_contention += other.shard_contention;
    }
}

/// A solution: each κ variable is assigned a conjunction of predicates over
/// its formal arguments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Solution {
    assignment: BTreeMap<KVid, Vec<Expr>>,
    /// Hash-consed ids of the conjuncts in `assignment`, kept in lockstep
    /// so the weakening loop never re-interns a candidate tree.
    ids: BTreeMap<KVid, Vec<ExprId>>,
}

impl Solution {
    /// The predicate assigned to `kvid`, expressed over its formal
    /// arguments.
    pub fn of(&self, kvid: KVid) -> Expr {
        self.of_id(kvid).expr()
    }

    /// Hash-consed form of [`Solution::of`].
    pub fn of_id(&self, kvid: KVid) -> ExprId {
        match self.ids.get(&kvid) {
            Some(ids) => ExprId::and_all(ids.iter().copied()),
            None => ExprId::intern(&Expr::tt()),
        }
    }

    /// The predicate denoted by an application under this solution.
    pub fn apply(&self, app: &KVarApp, kvars: &KVarStore) -> Expr {
        self.apply_id(app, kvars).expr()
    }

    /// Hash-consed form of [`Solution::apply`]: the substitution runs over
    /// the shared DAG and no tree is ever rebuilt.
    pub fn apply_id(&self, app: &KVarApp, kvars: &KVarStore) -> ExprId {
        let decl = kvars.get(app.kvid);
        app.instantiate_id(decl, self.of_id(app.kvid))
    }

    /// Number of conjuncts assigned to `kvid`.
    pub fn num_conjuncts(&self, kvid: KVid) -> usize {
        self.assignment.get(&kvid).map_or(0, Vec::len)
    }

    /// The hash-consed candidate conjuncts of `kvid`.
    fn candidate_ids(&self, kvid: KVid) -> Option<&[ExprId]> {
        self.ids.get(&kvid).map(Vec::as_slice)
    }

    fn set(&mut self, kvid: KVid, conjuncts: Vec<Expr>) {
        self.ids
            .insert(kvid, conjuncts.iter().map(ExprId::intern).collect());
        self.assignment.insert(kvid, conjuncts);
    }

    /// Drops the candidates whose `mask` entry is `false`, in both forms.
    fn retain_mask(&mut self, kvid: KVid, mask: &[bool]) {
        let conjuncts = self
            .assignment
            .get_mut(&kvid)
            .expect("retain of an unassigned kvar");
        let mut keep = mask.iter();
        conjuncts.retain(|_| *keep.next().expect("mask is as long as the candidates"));
        let ids = self.ids.get_mut(&kvid).expect("ids kept in lockstep");
        let mut keep = mask.iter();
        ids.retain(|_| *keep.next().expect("mask is as long as the candidates"));
    }

    /// Moves the entries of `kvids` out into their own solution — a
    /// worker's private slice of the assignment.  The κ-sets of distinct
    /// components are disjoint, so extraction distributes the assignment
    /// across workers without copying or locking.
    fn extract(&mut self, kvids: &BTreeSet<KVid>) -> Solution {
        let mut out = Solution::default();
        for &kvid in kvids {
            if let Some(conjuncts) = self.assignment.remove(&kvid) {
                out.assignment.insert(kvid, conjuncts);
            }
            if let Some(ids) = self.ids.remove(&kvid) {
                out.ids.insert(kvid, ids);
            }
        }
        out
    }

    /// Reabsorbs a worker's slice; the keys are disjoint from `self`'s by
    /// the partitioning invariant.
    fn merge(&mut self, other: Solution) {
        self.assignment.extend(other.assignment);
        self.ids.extend(other.ids);
    }
}

/// Why a solve degraded to [`FixResult::Unknown`] instead of reaching a
/// verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnknownReason {
    /// The wall-clock deadline ([`flux_smt::ResourceBudget::timeout`])
    /// expired before the weakening loop converged or a concrete obligation
    /// was decided.
    Deadline,
    /// A step budget was exhausted; the payload names the budget kind
    /// (e.g. `"weaken-iterations"`, `"solver-limits"`).
    Budget(&'static str),
    /// A parallel weakening or concrete-check worker panicked.  The
    /// component's clauses were abandoned (its slice of the assignment is
    /// dropped, never merged half-weakened) while the remaining components
    /// completed normally.
    WorkerPanic {
        /// Index of the κ-dependency component (or, for a concrete-check
        /// panic, `usize::MAX`).
        component: usize,
        /// Indices of the clauses the failed unit was responsible for.
        clauses: Vec<usize>,
        /// The panic payload, stringified.
        message: String,
    },
}

/// Result of solving a constraint set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FixResult {
    /// All constraints hold under the returned solution.
    Safe(Solution),
    /// Some concrete constraints failed even under the weakest consistent
    /// assignment; their tags are returned for blame.
    Unsafe {
        /// The assignment that was reached before checking concrete heads.
        solution: Solution,
        /// Tags of the failed constraints, deduplicated, in order.
        failed: Vec<Tag>,
    },
    /// The solve was cut short — by a resource budget, the deadline, or a
    /// contained worker failure — before it could soundly conclude either
    /// way.  Never reported as verified: a degraded function is `Unknown`,
    /// with the structured reasons attached.
    Unknown {
        /// The (possibly non-converged, possibly incomplete) assignment
        /// reached before the solve was cut short; diagnostic only.
        solution: Solution,
        /// Every degradation that contributed, in detection order.
        reasons: Vec<UnknownReason>,
    },
}

impl FixResult {
    /// True if the result is [`FixResult::Safe`].
    pub fn is_safe(&self) -> bool {
        matches!(self, FixResult::Safe(_))
    }
}

/// Prepared solver inputs of one clause, memoized across weakening
/// iterations.
///
/// Everything here is a pure function of the κ assignments the clause
/// mentions (head and guards), so it stays valid — session included, with
/// its hypothesis CNF, learned clauses and simplex basis — until one of
/// those assignments is weakened, which bumps the corresponding version
/// counter and invalidates the state wholesale.
struct ClauseState {
    /// Version of the head κ at preparation time (governs `inst_ids`).
    head_version: u64,
    /// Version of each κ-guard, in clause order, at preparation time
    /// (governs the hypotheses — keys and session included).
    guard_versions: Vec<u64>,
    /// Set when a visit at these versions ended with every candidate
    /// surviving: later visits replay the recorded fast-path hit without
    /// touching the cache (the classification flags are `(xbench,
    /// cross_fn)` of the lookup that proved convergence).
    converged_hit: Option<(bool, bool)>,
    /// Hash-consed ids of the head candidates instantiated at the
    /// application's arguments; every cache key, conjunction and session
    /// query is id-based (no tree walks).
    inst_ids: Vec<ExprId>,
    /// Tree form of `inst_ids`, materialized lazily — only counter-model
    /// evaluation needs it.
    insts: Option<Vec<Expr>>,
    /// The clause's hypotheses under the current assignment, hash-consed.
    hyp_ids: Vec<ExprId>,
    /// Tree form of `hyp_ids`, materialized lazily — only counter-model
    /// evaluation and the legacy (non-incremental) pipeline need it.
    hypotheses: Option<Vec<Expr>>,
    /// Base context extended with the clause binders.
    clause_ctx: SortCtx,
    /// Interned cache-key parts (`None` with the incremental engine off).
    keys: Option<ClauseKeys>,
    /// The live solver session, opened lazily on the first cache miss and
    /// kept across iterations.
    session: Option<Session>,
}

impl ClauseState {
    /// Materializes the tree forms needed for counter-model evaluation.
    fn materialize_trees(&mut self) {
        if self.insts.is_none() {
            self.insts = Some(self.inst_ids.iter().map(|id| id.expr()).collect());
        }
        if self.hypotheses.is_none() {
            self.hypotheses = Some(self.hyp_ids.iter().map(|id| id.expr()).collect());
        }
    }
}

/// Per-clause weakening state lives on worker threads (and carries the live
/// solver session with it); keep it — and everything else a worker owns or
/// returns — `Send` by construction.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ClauseState>();
    assert_send::<Solution>();
    assert_send::<FixStats>();
    assert_send::<FixResult>();
};

/// Cross-version memos of one clause's preparation work, held per subset
/// position for the whole weakening run (unlike [`ClauseState`], which is
/// discarded wholesale when a κ version moves).
///
/// Everything here is a pure function of inputs finer-grained than "some κ
/// version moved": concrete guards and the clause context never change,
/// candidate instantiation depends only on the candidate id, and a κ-guard's
/// instantiation depends only on that one guard's version.  Without these
/// memos a version bump on *one* κ re-interned every guard tree and
/// re-instantiated every hypothesis and surviving candidate of every clause
/// mentioning it — which profiling showed dominated the fixpoint layer's
/// time on the candidate-heavy benchmarks.
struct ClauseMemo {
    /// Interned ids of the concrete (`Guard::Pred`) guards, in clause order
    /// (`None` at κ-guard positions, or while not yet interned).
    pred_ids: Vec<Option<ExprId>>,
    /// Per guard position: the κ version whose instantiated hypothesis is
    /// cached, and the hypothesis id (`None` at `Pred` positions).
    kvar_insts: Vec<Option<(u64, ExprId)>>,
    /// Base context extended with the clause binders.
    ctx: Option<SortCtx>,
    /// α-normalization memo: original hypothesis id ↦ canonical id under
    /// this clause's renamer.  The renamer is determined by the clause
    /// context, which never changes, so entries stay valid across κ
    /// version bumps (where the hypothesis ids themselves largely repeat).
    canon: HashMap<ExprId, ExprId>,
}

impl ClauseMemo {
    fn new(guards: usize) -> ClauseMemo {
        ClauseMemo {
            pred_ids: vec![None; guards],
            kvar_insts: vec![None; guards],
            ctx: None,
            canon: HashMap::new(),
        }
    }
}

/// The versions of the κ-guards of `clause`, in clause order.
fn guard_versions_of(clause: &Clause, versions: &BTreeMap<KVid, u64>) -> Vec<u64> {
    clause
        .guards
        .iter()
        .filter_map(|guard| match guard {
            Guard::KVar(guard_app) => Some(versions.get(&guard_app.kvid).copied().unwrap_or(0)),
            Guard::Pred(_) => None,
        })
        .collect()
}

/// Per-clause parts of the validity-cache key, interned once per clause and
/// shared (via `Arc`) by the keys of every goal checked against it.
///
/// Keys are α-normalized: context binders (and quantifier binders inside
/// hypotheses and goals) are renamed to positional canonical names before
/// interning.  Binder names come from [`Name::fresh`], whose process-global
/// counter makes them differ between otherwise identical runs — without the
/// renaming, a daemon's warm cache could never hit across requests.  The
/// solver itself always works on the original expressions; only the keys
/// are canonical, and the renaming is injective, so α-distinct queries keep
/// distinct keys.
struct ClauseKeys {
    fns: FnCtxId,
    ctx: Arc<[(Name, Sort)]>,
    hyps: Arc<[ExprId]>,
    /// The clause's canonical renamer, fixed by the context binders.
    renamer: AlphaRenamer,
    /// Goal-normalization memo: the weakening loop probes the same goal ids
    /// across iterations, and normalization walks the goal tree.
    goal_memo: RefCell<HashMap<ExprId, ExprId>>,
}

impl ClauseKeys {
    /// `canon` memoizes hypothesis normalization across rebuilds of the
    /// same clause (the renamer is a pure function of the clause context,
    /// which never changes, so entries survive κ version bumps).
    fn new(
        fns: FnCtxId,
        clause_ctx: &SortCtx,
        hyp_ids: &[ExprId],
        canon: &mut HashMap<ExprId, ExprId>,
    ) -> ClauseKeys {
        let mut renamer = AlphaRenamer::new();
        let ctx: Arc<[(Name, Sort)]> = clause_ctx
            .iter()
            .map(|(name, sort)| (renamer.bind(name), sort))
            .collect();
        let hyps: Arc<[ExprId]> = hyp_ids
            .iter()
            .map(|id| {
                *canon
                    .entry(*id)
                    .or_insert_with(|| ExprId::intern(&renamer.normalize(&id.expr())))
            })
            .collect();
        ClauseKeys {
            fns,
            ctx,
            hyps,
            renamer,
            goal_memo: RefCell::new(HashMap::new()),
        }
    }

    fn for_goal_id(&self, goal: ExprId) -> QueryKey {
        let canon = *self
            .goal_memo
            .borrow_mut()
            .entry(goal)
            .or_insert_with(|| ExprId::intern(&self.renamer.normalize(&goal.expr())));
        QueryKey::new(self.fns, self.ctx.clone(), self.hyps.clone(), canon)
    }
}

/// One query's goal: a single pre-interned formula, or the conjunction of
/// several (the whole-candidate-set check of the weakening loop), keyed by
/// the id of the folded conjunction.
enum Goals<'a> {
    Single(ExprId),
    Conjunction(&'a [ExprId], ExprId),
}

impl Goals<'_> {
    fn key_id(&self) -> ExprId {
        match self {
            Goals::Single(id) => *id,
            Goals::Conjunction(_, whole) => *whole,
        }
    }

    /// The goal as a tree, for the non-incremental (legacy A/B) pipeline.
    fn tree(&self) -> Expr {
        match self {
            Goals::Single(id) => id.expr(),
            Goals::Conjunction(ids, _) => Expr::and_all(ids.iter().map(|id| id.expr())),
        }
    }
}

/// The per-worker clause-solving engine: everything one weakening (or
/// concrete-check) worker needs, owned privately so partitions solve
/// without sharing mutable state — statistics and the one-shot fallback
/// solver included.  The only state workers share are the caches, which are
/// mutex-guarded: the process-global hash-cons / CNF / verdict tables, and
/// the owning solver's hermetic cache when the global one is disabled.
struct Engine<'a> {
    config: &'a FixConfig,
    stats: FixStats,
    smt: Solver,
    /// The owning solver's hermetic cache (used when `global_cache` is
    /// off); shared by every worker of that solver.
    local_cache: &'a Mutex<ValidityCache>,
    /// The owning solver's identity for cache-hit attribution.
    solver_id: u64,
    /// The owning solver's current solve epoch.
    epoch: u64,
    /// Interned function-declaration context of the current solve.
    fns: FnCtxId,
    /// Cross-clause instantiation memo: per κ application (identified by the
    /// κ and its interned actuals), the substituted form of each candidate
    /// conjunct ever instantiated at those actuals.  The same application
    /// recurs across clauses — κ-head clauses, κ-guards and the final
    /// concrete obligations all mention the κs at the same program points —
    /// and candidate substitution is by far the most expensive preparation
    /// step, so the concrete-check phase in particular runs almost entirely
    /// on hits from the weakening phase.
    inst_memo: HashMap<InstKey, HashMap<ExprId, ExprId>>,
    /// Degradations detected by this engine (budget-cut weakening loops);
    /// folded into the solve's [`FixResult::Unknown`] reasons.
    unknowns: Vec<UnknownReason>,
}

/// Identity of one κ application: the κ plus its interned actual arguments.
type InstKey = (KVid, Box<[ExprId]>);

impl<'a> Engine<'a> {
    fn new(solver: &'a FixpointSolver) -> Engine<'a> {
        Engine {
            config: &solver.config,
            stats: FixStats::default(),
            smt: Solver::new(solver.config.smt),
            local_cache: &solver.local_cache,
            solver_id: solver.solver_id,
            epoch: solver.epoch,
            fns: solver.fns,
            inst_memo: HashMap::new(),
            unknowns: Vec::new(),
        }
    }

    /// Instantiates `cands` at `app`'s actuals through [`Engine::inst_memo`];
    /// misses are substituted in one batch (one table lock, one shared
    /// walk memo — sibling candidates share most of their subterms).  Each
    /// returned id equals `app.instantiate_id(decl, cand)` exactly.
    fn instantiate_at(
        &mut self,
        app: &KVarApp,
        kvars: &KVarStore,
        cands: &[ExprId],
    ) -> Vec<ExprId> {
        let decl = kvars.get(app.kvid);
        let args: Box<[ExprId]> = app.args.iter().map(ExprId::intern).collect();
        let memo = self.inst_memo.entry((app.kvid, args)).or_default();
        let missing: Vec<ExprId> = cands
            .iter()
            .copied()
            .filter(|c| !memo.contains_key(c))
            .collect();
        if !missing.is_empty() {
            let subst = app.arg_subst(decl);
            let out = ExprId::subst_many(&missing, &subst);
            for (c, id) in missing.iter().zip(out) {
                memo.insert(*c, id);
            }
        }
        cands.iter().map(|c| memo[c]).collect()
    }

    /// The clause's hypothesis ids under `solution`: interned concrete
    /// guards, and κ-guards instantiated through the cross-clause memo
    /// (folded exactly like [`Solution::of_id`], so ids line up with the
    /// weakening phase's cache keys).
    fn hypotheses_of(
        &mut self,
        clause: &Clause,
        solution: &Solution,
        kvars: &KVarStore,
    ) -> Vec<ExprId> {
        clause
            .guards
            .iter()
            .map(|guard| match guard {
                Guard::Pred(p) => ExprId::intern(p),
                Guard::KVar(app) => {
                    let cands = solution.candidate_ids(app.kvid).unwrap_or(&[]);
                    ExprId::and_all(self.instantiate_at(app, kvars, cands))
                }
            })
            .collect()
    }

    /// Runs the weakening loop over the clauses in `subset` (indices into
    /// `clauses`, ascending) until a fixpoint or the iteration bound.
    /// Clauses outside `subset` are never touched, and `solution` must
    /// contain every κ the subset's clauses mention — in sequential mode
    /// that is the whole assignment, in parallel mode the component's
    /// private slice.
    fn weaken(
        &mut self,
        clauses: &[Clause],
        subset: &[usize],
        kvars: &KVarStore,
        ctx: &SortCtx,
        solution: &mut Solution,
    ) {
        // Iterative weakening.  All derived per-clause inputs — candidate
        // instantiations, hypothesis expressions, cache keys and the solver
        // session itself — are pure functions of the κ assignments the
        // clause mentions, and assignments only change when weakening
        // shrinks one.  Each κ therefore carries a version counter, and a
        // clause's prepared state (including its live session, with all the
        // CNF, learned clauses and simplex basis it has accumulated) is
        // reused verbatim across iterations until one of its κ versions
        // moves.  Before this memo the loop re-instantiated, re-interned
        // and re-assumed every clause every iteration — which, not the
        // theory work, dominated wall-clock on the slow benchmarks.
        let mut versions: BTreeMap<KVid, u64> = BTreeMap::new();
        // Indexed by position in `subset` (not clause index): a worker only
        // ever materializes state for its own component's clauses.
        let mut states: Vec<Option<ClauseState>> = (0..subset.len()).map(|_| None).collect();
        let mut memos: Vec<Option<ClauseMemo>> = (0..subset.len()).map(|_| None).collect();
        // An iteration-budget cut (unlike exhausting the historical
        // `max_iterations` safety bound, which keeps its silent-proceed
        // behaviour) leaves the assignment too strong to trust a `Safe`
        // verdict, so it is recorded as a degradation.  Deadline checks run
        // once per iteration — each iteration amortizes the clock read over
        // a full pass of clause visits.
        let budget = self.config.smt.budget;
        let iteration_cap = budget
            .weaken_iterations
            .map(|cap| (cap as usize).min(self.config.max_iterations));
        let max_iterations = iteration_cap.unwrap_or(self.config.max_iterations);
        let mut converged = false;
        let mut deadline_hit = false;
        for _ in 0..max_iterations {
            if budget.deadline_exceeded() {
                deadline_hit = true;
                break;
            }
            self.stats.iterations += 1;
            let mut changed = false;
            for (si, &ci) in subset.iter().enumerate() {
                let clause = &clauses[ci];
                let Head::KVar(app) = &clause.head else {
                    continue;
                };
                let head_version = versions.get(&app.kvid).copied().unwrap_or(0);
                let guard_versions = guard_versions_of(clause, &versions);
                let (stale_head, stale_guards) = match &states[si] {
                    Some(state) => (
                        state.head_version != head_version,
                        state.guard_versions != guard_versions,
                    ),
                    None => (true, true),
                };
                if stale_head || stale_guards {
                    let memo =
                        memos[si].get_or_insert_with(|| ClauseMemo::new(clause.guards.len()));
                    // Candidates are instantiated over the shared DAG; tree
                    // forms are materialized lazily, only when a
                    // counter-model needs evaluating.
                    let inst_ids: Vec<ExprId> = match solution.candidate_ids(app.kvid) {
                        Some(ids) if !ids.is_empty() => self.instantiate_at(app, kvars, ids),
                        _ => continue,
                    };
                    match (&mut states[si], stale_guards) {
                        (Some(state), false) => {
                            // Only this clause's own candidates changed: the
                            // hypotheses — and with them the cache keys and
                            // the live session, CNF, learned clauses and
                            // simplex basis — are still exactly right.
                            state.head_version = head_version;
                            state.inst_ids = inst_ids;
                            state.insts = None;
                            state.converged_hit = None;
                        }
                        (slot, _) => {
                            let hyp_ids = {
                                let mut out = Vec::with_capacity(clause.guards.len());
                                for (gi, guard) in clause.guards.iter().enumerate() {
                                    out.push(match guard {
                                        Guard::Pred(p) => *memo.pred_ids[gi]
                                            .get_or_insert_with(|| ExprId::intern(p)),
                                        Guard::KVar(gapp) => {
                                            let version =
                                                versions.get(&gapp.kvid).copied().unwrap_or(0);
                                            match memo.kvar_insts[gi] {
                                                Some((v, id)) if v == version => id,
                                                _ => {
                                                    let cands = solution
                                                        .candidate_ids(gapp.kvid)
                                                        .unwrap_or(&[]);
                                                    let id = ExprId::and_all(
                                                        self.instantiate_at(gapp, kvars, cands),
                                                    );
                                                    memo.kvar_insts[gi] = Some((version, id));
                                                    id
                                                }
                                            }
                                        }
                                    });
                                }
                                out
                            };
                            let clause_ctx = memo
                                .ctx
                                .get_or_insert_with(|| clause_ctx(clause, ctx))
                                .clone();
                            let keys = self.keys_for(&clause_ctx, &hyp_ids, &mut memo.canon);
                            // A weakened κ-guard changes the hypotheses by a
                            // conjunct diff: retract the stale conjuncts from
                            // the live session and keep its CDCL core,
                            // learned clauses and simplex basis, instead of
                            // rebuilding from scratch.
                            let mut session = None;
                            if let Some(old) = slot.take() {
                                match old.session {
                                    Some(mut live) if self.config.retract_conjuncts => {
                                        if live.update_hypotheses(&hyp_ids) {
                                            session = Some(live);
                                        } else {
                                            self.close(Some(live));
                                        }
                                    }
                                    other => self.close(other),
                                }
                            }
                            *slot = Some(ClauseState {
                                head_version,
                                guard_versions,
                                converged_hit: None,
                                inst_ids,
                                insts: None,
                                hyp_ids,
                                hypotheses: None,
                                clause_ctx,
                                keys,
                                session,
                            });
                        }
                    }
                } else if solution.num_conjuncts(app.kvid) == 0 {
                    continue;
                }
                let state = states[si].as_mut().expect("state was just prepared");
                // A clause that already converged at these versions can't
                // weaken anything: replay the fast-path hit it recorded
                // (identical bookkeeping, zero lookups).
                if let Some((xbench, cross_fn)) = state.converged_hit {
                    self.stats.smt_queries += 1;
                    self.stats.cache_hits += 1;
                    if xbench {
                        self.stats.xbench_hits += 1;
                    } else if cross_fn {
                        self.stats.cross_fn_hits += 1;
                    }
                    continue;
                }
                // Fast path: when every candidate is already individually
                // cached as valid — the common case when the clause
                // re-enters after surviving a previous iteration — the whole
                // query is answered from the cache outright.
                if let Some(keys) = &state.keys {
                    let cached: Vec<Option<CacheEntry>> = state
                        .inst_ids
                        .iter()
                        .map(|g| self.cache_peek(&keys.for_goal_id(*g)))
                        .collect();
                    if cached
                        .iter()
                        .all(|c| matches!(c, Some(e) if e.verdict == Validity::Valid))
                    {
                        self.stats.smt_queries += 1;
                        self.stats.cache_hits += 1;
                        let xbench = cached
                            .iter()
                            .all(|c| matches!(c, Some(e) if e.owner != self.solver_id));
                        let cross_fn = !xbench
                            && cached
                                .iter()
                                .all(|c| matches!(c, Some(e) if e.epoch < self.epoch));
                        if xbench {
                            self.stats.xbench_hits += 1;
                        } else if cross_fn {
                            self.stats.cross_fn_hits += 1;
                        }
                        state.converged_hit = Some((xbench, cross_fn));
                        continue;
                    }
                }
                let mut alive = vec![true; state.inst_ids.len()];
                // Houdini-style weakening: check the conjunction of the
                // surviving candidates; if it fails, evaluate every survivor
                // under the counter-model and drop all that are falsified —
                // no per-candidate SMT query — then re-check the smaller
                // conjunction.  Only when the model stops deciding anything
                // (or there is no trustworthy model) do the survivors pay
                // one query each.
                let tt = ExprId::intern(&Expr::tt());
                loop {
                    let alive_ids: Vec<ExprId> = state
                        .inst_ids
                        .iter()
                        .zip(&alive)
                        .filter(|(_, alive)| **alive)
                        .map(|(id, _)| *id)
                        .collect();
                    let whole_id = ExprId::and_all(alive_ids.iter().copied());
                    if whole_id == tt {
                        break;
                    }
                    match self.check(
                        &mut state.session,
                        &state.clause_ctx,
                        &state.keys,
                        &state.hyp_ids,
                        &Goals::Conjunction(&alive_ids, whole_id),
                    ) {
                        Validity::Valid => {
                            // `hyps ⟹ c1 ∧ … ∧ cn` entails every
                            // `hyps ⟹ ci`, so seed the per-candidate entries
                            // the next iteration (or the fast path above)
                            // will ask for.
                            if let Some(keys) = &state.keys {
                                for (goal, _) in state
                                    .inst_ids
                                    .iter()
                                    .zip(&alive)
                                    .filter(|(_, alive)| **alive)
                                {
                                    self.cache_store(keys.for_goal_id(*goal), Validity::Valid);
                                }
                            }
                            break;
                        }
                        Validity::Invalid(Some(model))
                            if self.config.model_pruning
                                && self.model_satisfies_hyps(state, &model) =>
                        {
                            if self.prune_candidates(&model, state, &mut alive) {
                                continue;
                            }
                            self.weaken_per_candidate(state, &mut alive);
                            break;
                        }
                        _ => {
                            self.weaken_per_candidate(state, &mut alive);
                            break;
                        }
                    }
                }
                if alive.contains(&false) {
                    changed = true;
                    *versions.entry(app.kvid).or_insert(0) += 1;
                    solution.retain_mask(app.kvid, &alive);
                }
            }
            if !changed {
                converged = true;
                break;
            }
        }
        if deadline_hit {
            self.unknowns.push(UnknownReason::Deadline);
        } else if !converged && iteration_cap.is_some_and(|cap| cap < self.config.max_iterations) {
            self.unknowns
                .push(UnknownReason::Budget("weaken-iterations"));
        }
        // Fold the surviving sessions' statistics back into the engine
        // totals.
        for state in states.into_iter().flatten() {
            self.close(state.session);
        }
    }

    /// Checks one concrete-head clause under the final assignment.  Returns
    /// the clause's tag and the three-way verdict: `Valid` (obligation
    /// holds), `Invalid` (refuted with blame), `Unknown` (the solver gave up
    /// within its budgets — the solve must not report the function either
    /// verified or refuted on this clause's account).
    fn check_concrete_clause(
        &mut self,
        clause: &Clause,
        kvars: &KVarStore,
        ctx: &SortCtx,
        solution: &Solution,
    ) -> (Tag, Validity) {
        let Head::Pred(goal, tag) = &clause.head else {
            unreachable!("concrete subset contains only Pred heads");
        };
        let hyp_ids = self.hypotheses_of(clause, solution, kvars);
        let clause_ctx = clause_ctx(clause, ctx);
        let mut canon = HashMap::new();
        let keys = self.keys_for(&clause_ctx, &hyp_ids, &mut canon);
        let mut session = None;
        let goal_id = ExprId::intern(goal);
        let verdict = self.check(
            &mut session,
            &clause_ctx,
            &keys,
            &hyp_ids,
            &Goals::Single(goal_id),
        );
        self.close(session);
        (*tag, verdict)
    }

    /// Checks every clause in `subset` (concrete-head indices, ascending)
    /// under the final assignment, returning `(clause index, tag, verdict)`
    /// per clause.  The hypotheses of these clauses are unchanged since the
    /// last weakening iteration, so on κ-free-or-converged systems these
    /// queries hit the cache.
    fn check_concrete(
        &mut self,
        clauses: &[Clause],
        subset: &[usize],
        kvars: &KVarStore,
        ctx: &SortCtx,
        solution: &Solution,
    ) -> Vec<(usize, Tag, Validity)> {
        subset
            .iter()
            .map(|&ci| {
                let (tag, verdict) = self.check_concrete_clause(&clauses[ci], kvars, ctx, solution);
                (ci, tag, verdict)
            })
            .collect()
    }

    fn keys_for(
        &self,
        clause_ctx: &SortCtx,
        hyp_ids: &[ExprId],
        canon: &mut HashMap<ExprId, ExprId>,
    ) -> Option<ClauseKeys> {
        self.config
            .incremental
            .then(|| ClauseKeys::new(self.fns, clause_ctx, hyp_ids, canon))
    }

    /// Looks `key` up in whichever cache this solver uses (no stats).
    fn cache_peek(&self, key: &QueryKey) -> Option<CacheEntry> {
        if self.config.global_cache {
            global_cache().lookup(key)
        } else {
            lock_recover(self.local_cache).lookup(key)
        }
    }

    /// Stores a verdict in whichever cache this solver uses, stamped with
    /// the current epoch and the owning solver's identity.
    ///
    /// `Unknown` is the one *budget-relative* verdict — a solver with
    /// larger limits might decide the same query — so it is never shared
    /// through the process-global cache, where solvers with different
    /// configurations meet; the per-solver cache has a fixed configuration
    /// and keeps the historical behaviour.
    fn cache_store(&mut self, key: QueryKey, verdict: Validity) {
        if self.config.global_cache {
            if !matches!(verdict, Validity::Unknown) {
                global_cache().insert(key, verdict, self.epoch, self.solver_id);
            }
        } else {
            lock_recover(self.local_cache).insert(key, verdict, self.epoch, self.solver_id);
        }
    }

    /// Discharges one validity query through the engine: consult the cache,
    /// then the clause's session (opened lazily on the first miss).  With
    /// `incremental` off (`keys` is `None`), queries go straight to the
    /// one-shot solver, reproducing the historical behaviour.
    fn check(
        &mut self,
        session: &mut Option<Session>,
        clause_ctx: &SortCtx,
        keys: &Option<ClauseKeys>,
        hyp_ids: &[ExprId],
        goals: &Goals<'_>,
    ) -> Validity {
        self.stats.smt_queries += 1;
        let Some(keys) = keys else {
            // The legacy (non-incremental) pipeline works on trees.
            let hypotheses: Vec<Expr> = hyp_ids.iter().map(|id| id.expr()).collect();
            return self
                .smt
                .check_valid_imp(clause_ctx, &hypotheses, &goals.tree());
        };
        let key = keys.for_goal_id(goals.key_id());
        if let Some(entry) = self.cache_peek(&key) {
            self.stats.cache_hits += 1;
            if entry.owner != self.solver_id {
                self.stats.xbench_hits += 1;
            } else if entry.epoch < self.epoch {
                self.stats.cross_fn_hits += 1;
            }
            return entry.verdict;
        }
        self.stats.cache_misses += 1;
        if session.is_none() {
            self.stats.sessions += 1;
            *session = Some(Session::assume_ids(self.config.smt, clause_ctx, hyp_ids));
        }
        let session = session.as_mut().expect("session was just opened");
        let verdict = match goals {
            Goals::Single(id) => session.check_id(*id),
            Goals::Conjunction(ids, _) => session.check_all(ids),
        };
        self.cache_store(key, verdict.clone());
        verdict
    }

    /// True when `model` decidably satisfies the clause's hypotheses —
    /// evaluated directly over the shared DAG, or (legacy mode) over tree
    /// forms materialized per clause version.  Only a model that does can
    /// be trusted to prune candidates.
    fn model_satisfies_hyps(&self, state: &mut ClauseState, model: &Model) -> bool {
        if self.config.dag_eval {
            model.satisfies_all_ids(&state.hyp_ids)
        } else {
            state.materialize_trees();
            model.satisfies_all(state.hypotheses.as_ref().unwrap())
        }
    }

    /// Drops every surviving candidate of `state` falsified by `model`,
    /// choosing the DAG or tree evaluator per [`FixConfig::dag_eval`].
    /// Returns whether anything was dropped.
    fn prune_candidates(
        &mut self,
        model: &Model,
        state: &mut ClauseState,
        alive: &mut [bool],
    ) -> bool {
        if self.config.dag_eval {
            self.prune_by_model_ids(model, &state.inst_ids, alive)
        } else {
            state.materialize_trees();
            let insts = state.insts.as_ref().unwrap();
            self.prune_by_model(model, insts, alive)
        }
    }

    /// Drops every surviving candidate that decidably evaluates to `false`
    /// under `model`.  The caller has already confirmed that the model
    /// satisfies the clause's hypotheses, so each drop is exactly the
    /// verdict a per-candidate SMT query would have produced — minus the
    /// query.  Returns whether anything was dropped.
    fn prune_by_model(&mut self, model: &Model, insts: &[Expr], alive: &mut [bool]) -> bool {
        let mut pruned = false;
        for (inst, alive) in insts.iter().zip(alive.iter_mut()) {
            if *alive && model.eval_bool(inst) == Some(false) {
                *alive = false;
                pruned = true;
                self.stats.model_prunes += 1;
            }
        }
        pruned
    }

    /// [`Engine::prune_by_model`] over hash-consed candidates: evaluation
    /// runs on the shared DAG with per-call memoization, so no candidate
    /// tree is ever materialized.
    fn prune_by_model_ids(&mut self, model: &Model, insts: &[ExprId], alive: &mut [bool]) -> bool {
        let mut pruned = false;
        for (&inst, alive) in insts.iter().zip(alive.iter_mut()) {
            if *alive && model.eval_bool_id(inst) == Some(false) {
                *alive = false;
                pruned = true;
                self.stats.model_prunes += 1;
            }
        }
        pruned
    }

    /// The per-candidate weakening loop: one validity query per surviving
    /// candidate.  Counter-models produced along the way still prune
    /// *later* candidates for free (a failing candidate's counter-model
    /// frequently falsifies its neighbours too).
    fn weaken_per_candidate(&mut self, state: &mut ClauseState, alive: &mut [bool]) {
        for i in 0..state.inst_ids.len() {
            if !alive[i] {
                continue;
            }
            let verdict = self.check(
                &mut state.session,
                &state.clause_ctx,
                &state.keys,
                &state.hyp_ids,
                &Goals::Single(state.inst_ids[i]),
            );
            if verdict.is_valid() {
                continue;
            }
            // `Unknown` drops are conservative (the kept conjuncts are still
            // verified inductive) but disqualify blaming the program for any
            // later concrete failure — counted so the solve can degrade an
            // `Unsafe` that might be an over-weakening artifact to `Unknown`.
            if matches!(verdict, Validity::Unknown) {
                self.stats.unknown_drops += 1;
            }
            alive[i] = false;
            if self.config.model_pruning {
                if let Validity::Invalid(Some(model)) = &verdict {
                    if self.model_satisfies_hyps(state, model) {
                        if self.config.dag_eval {
                            let ids = &state.inst_ids[i + 1..];
                            self.prune_by_model_ids(model, ids, &mut alive[i + 1..]);
                        } else {
                            let insts = state.insts.as_ref().unwrap();
                            self.prune_by_model(model, &insts[i + 1..], &mut alive[i + 1..]);
                        }
                    }
                }
            }
        }
    }

    /// Folds a finished clause session's statistics into the engine totals.
    fn close(&mut self, session: Option<Session>) {
        if let Some(session) = session {
            self.smt.absorb(*session.stats());
        }
    }
}

/// The fixpoint solver.
pub struct FixpointSolver {
    /// Configuration.
    pub config: FixConfig,
    /// Statistics of the most recent [`FixpointSolver::solve`] call.  In
    /// parallel mode the per-worker statistics are merged in worker-slot
    /// order; the *totals* are stable because [`FixStats::absorb`] is
    /// commutative (sums and a max), but which worker processed which
    /// component — and hence each slot's share — depends on scheduling
    /// (see [`FixpointSolver::worker_queries`]).
    pub stats: FixStats,
    /// SMT queries issued per worker slot during the most recent solve
    /// (weakening and concrete-check phases combined).  Sequential solves
    /// report a single slot.  Work is claimed dynamically, so the split
    /// across slots may vary between runs; the sum always equals
    /// `stats.smt_queries`.
    pub worker_queries: Vec<usize>,
    smt: Solver,
    /// The hermetic per-solver cache, used when `config.global_cache` is
    /// off; otherwise verdicts live in [`global_cache`].  Mutex-guarded so
    /// the weakening workers of one solve can share it.
    local_cache: Mutex<ValidityCache>,
    /// This solver's identity for cache-hit attribution.
    solver_id: u64,
    /// The global epoch of the current [`FixpointSolver::solve`] call;
    /// entries stamped with an earlier epoch were created by an earlier
    /// solve (of this solver or any other).
    epoch: u64,
    /// Interned function-declaration context of the current solve.
    fns: FnCtxId,
}

impl FixpointSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: FixConfig) -> FixpointSolver {
        let smt = Solver::new(config.smt);
        FixpointSolver {
            config,
            stats: FixStats::default(),
            worker_queries: Vec::new(),
            smt,
            local_cache: Mutex::new(ValidityCache::new()),
            solver_id: next_owner(),
            epoch: 0,
            fns: intern_fn_ctx(&SortCtx::new()),
        }
    }

    /// Creates a solver with the default configuration.
    pub fn with_defaults() -> FixpointSolver {
        FixpointSolver::new(FixConfig::default())
    }

    /// Solves `constraint` under the κ declarations in `kvars`.
    ///
    /// `ctx` provides sorts for any free names not bound inside the
    /// constraint itself (and declarations of uninterpreted functions).
    pub fn solve(
        &mut self,
        constraint: &Constraint,
        kvars: &KVarStore,
        ctx: &SortCtx,
    ) -> FixResult {
        let clauses = constraint.flatten();
        // Verdicts survive across solve calls — and, through the global
        // cache, across solvers and benchmarks.  The epoch stamp attributes
        // each later hit to the solve that created the entry, and the
        // interned function-declaration context in every key keeps verdicts
        // from leaking between incompatible interpretation contexts (the
        // historical design cleared the cache on context change instead,
        // which forfeited exactly this sharing).
        self.epoch = next_epoch();
        self.fns = intern_fn_ctx(ctx);
        // Per-solve deadline: re-stamped from the relative timeout on every
        // call, so a solver reused across functions gives each solve its
        // full allowance.  Sessions and sub-solvers copy the stamped budget
        // at construction (their own `stamp` calls are then no-ops).
        self.config.smt.budget.deadline = None;
        self.config.smt.budget.stamp();
        let evictions_before = self.observed_evictions();
        let contentions_before = observed_contentions();
        let threads = self.config.threads.max(1);
        let parts = partition(&clauses, kvars);
        self.stats = FixStats {
            clauses: clauses.len(),
            kvars: kvars.len(),
            threads,
            partitions: parts.components.len(),
            ..FixStats::default()
        };
        self.worker_queries.clear();

        // Initial assignment: all well-sorted qualifier instantiations.
        // Distinct qualifier templates can instantiate to the same predicate
        // (e.g. `ν ≥ 0` from both a bound and a nonneg template), and the
        // instantiation order gives no adjacency guarantee — dedup by
        // hash-consed id so duplicates can't double the SMT work.
        let mut solution = Solution::default();
        for decl in kvars.iter() {
            let mut candidates = Vec::new();
            for qualifier in &self.config.qualifiers {
                candidates.extend(qualifier.instantiate(decl));
            }
            let mut seen: HashSet<ExprId> = HashSet::with_capacity(candidates.len());
            candidates.retain(|c| seen.insert(ExprId::intern(c)));
            self.stats.initial_candidates += candidates.len();
            solution.set(decl.id, candidates);
        }

        // Audit lint: reject ill-sorted or ill-scoped constraint systems
        // before the weakening loop can silently mis-solve them (the PR 2
        // bug class).  An audit failure is an engine/front-end bug, not a
        // property of the verified program, hence the panic.
        if self.config.smt.audit.lints() {
            let checks = crate::audit::lint_clauses(&clauses, kvars, ctx)
                .and_then(|n| Ok(n + crate::audit::lint_solution(&solution, kvars, ctx)?))
                .unwrap_or_else(|e| panic!("FLUX_AUDIT: {e}"));
            self.stats.lint_checks += checks;
        }

        let (checks, mut reasons) = if threads == 1 {
            self.solve_sequential(&clauses, &parts, kvars, ctx, &mut solution)
        } else {
            self.solve_parallel(&clauses, &parts, threads, kvars, ctx, &mut solution)
        };
        self.stats.evictions = (self.observed_evictions() - evictions_before) as usize;
        self.stats.shard_contention = (observed_contentions() - contentions_before) as usize;

        // Assemble the blamed tags in clause order, deduplicated — the same
        // order the historical sequential pass produced.  Concrete heads the
        // solver could not decide (`Unknown`) are degradations, not
        // failures: blaming the program for them would flip polarity.
        let mut failed = Vec::new();
        let mut failed_tags: HashSet<Tag> = HashSet::new();
        let mut undecided_heads = false;
        for (_, tag, verdict) in checks {
            match verdict {
                Validity::Valid => {}
                Validity::Invalid(_) => {
                    if failed_tags.insert(tag) {
                        failed.push(tag);
                    }
                }
                Validity::Unknown => undecided_heads = true,
            }
        }
        if undecided_heads {
            reasons.push(if self.config.smt.budget.deadline_exceeded() {
                UnknownReason::Deadline
            } else {
                UnknownReason::Budget("concrete-head")
            });
        }
        if !failed.is_empty() {
            if self.stats.unknown_drops > 0 {
                // A candidate dropped on an `Unknown` verdict may have
                // over-weakened the assignment, and these failures could be
                // artifacts of that — the program cannot be blamed.
                reasons.push(UnknownReason::Budget("weakened-on-unknown"));
                return FixResult::Unknown { solution, reasons };
            }
            // Genuine even when weakening was cut short: a non-converged
            // assignment only *strengthens* the hypotheses, so any
            // counterexample found under it also refutes the implication
            // under the converged (weaker) assignment.
            return FixResult::Unsafe { solution, failed };
        }
        if !reasons.is_empty() {
            return FixResult::Unknown { solution, reasons };
        }
        if self.config.smt.audit.certifies() {
            self.revalidate(&clauses, kvars, ctx, &solution);
        }
        FixResult::Safe(solution)
    }

    /// Snapshot of the process-global (and this solver's hermetic) cache
    /// eviction counters; solves difference it to attribute evictions.
    fn observed_evictions(&self) -> u64 {
        hcons_memo_evictions()
            + flux_smt::cnf_cache_evictions()
            + global_cache().evictions()
            + lock_recover(&self.local_cache).evictions()
    }

    /// Independent re-validation of a converged solution (audit tier
    /// `full`): substitutes the final assignment into every flattened clause
    /// and rechecks each implication with a *fresh* one-shot [`Solver`] —
    /// no sessions, no validity cache, no learned lemmas, and auditing
    /// disabled on the inner solver so the check is plain and terminal.  A
    /// clause the weakening loop claims satisfied but the one-shot solver
    /// can refute is an engine bug, so refutation panics; `Unknown` (the
    /// inner solver giving up within its budgets) is tolerated.
    fn revalidate(
        &mut self,
        clauses: &[Clause],
        kvars: &KVarStore,
        ctx: &SortCtx,
        solution: &Solution,
    ) {
        let mut smt = Solver::new(SmtConfig {
            audit: flux_logic::AuditTier::Off,
            ..self.config.smt
        });
        for (ci, clause) in clauses.iter().enumerate() {
            let mut scope = ctx.clone();
            for (name, sort) in &clause.binders {
                scope.push(*name, *sort);
            }
            let hyps: Vec<Expr> = clause
                .guards
                .iter()
                .map(|g| match g {
                    Guard::Pred(p) => p.clone(),
                    Guard::KVar(app) => solution.apply(app, kvars),
                })
                .collect();
            let (goal, blame) = match &clause.head {
                Head::Pred(p, tag) => (p.clone(), format!("tag {tag}")),
                Head::KVar(app) => (solution.apply(app, kvars), app.kvid.to_string()),
            };
            if let Validity::Invalid(_) = smt.check_valid_imp(&scope, &hyps, &goal) {
                panic!(
                    "FLUX_AUDIT: converged solution fails independent re-validation \
                     of clause #{ci} ({blame}): the one-shot solver refutes an \
                     implication the weakening loop accepted"
                );
            }
            self.stats.revalidations += 1;
        }
    }

    /// The historical single-threaded engine: one global weakening loop
    /// interleaving every clause in clause order, then the concrete-head
    /// pass, all on one engine.
    fn solve_sequential(
        &mut self,
        clauses: &[Clause],
        parts: &Partition,
        kvars: &KVarStore,
        ctx: &SortCtx,
        solution: &mut Solution,
    ) -> (Vec<(usize, Tag, Validity)>, Vec<UnknownReason>) {
        let all: Vec<usize> = (0..clauses.len()).collect();
        let mut engine = Engine::new(self);
        engine.weaken(clauses, &all, kvars, ctx, solution);
        let checks = engine.check_concrete(clauses, &parts.concrete, kvars, ctx, solution);
        let (stats, smt_stats, unknowns) = (engine.stats, engine.smt.stats, engine.unknowns);
        self.stats.absorb(&stats);
        self.smt.absorb(smt_stats);
        self.worker_queries.push(stats.smt_queries);
        (checks, unknowns)
    }

    /// The partitioned scheduler: κ-dependency components weaken on scoped
    /// worker threads pulling from an atomic work queue, then the
    /// concrete-head checks spread across workers the same way.  The
    /// solution merges in component order and the verdicts in clause
    /// order, so those outputs depend only on the inputs (not even on the
    /// thread cap); statistics merge in worker-slot order, which makes the
    /// *totals* stable (absorb is commutative) while each slot's share
    /// still depends on which worker claimed which component.
    fn solve_parallel(
        &mut self,
        clauses: &[Clause],
        parts: &Partition,
        threads: usize,
        kvars: &KVarStore,
        ctx: &SortCtx,
        solution: &mut Solution,
    ) -> (Vec<(usize, Tag, Validity)>, Vec<UnknownReason>) {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        // Each component's slice of the assignment travels to whichever
        // worker claims the component, and back, through its task cell.
        struct TaskCell {
            input: Option<Solution>,
            output: Option<Solution>,
        }
        let tasks: Vec<Mutex<TaskCell>> = parts
            .kvar_sets
            .iter()
            .map(|kvids| {
                Mutex::new(TaskCell {
                    input: Some(solution.extract(kvids)),
                    output: None,
                })
            })
            .collect();
        let mut worker_stats: Vec<(FixStats, SmtStats)> = Vec::new();
        let mut reasons: Vec<UnknownReason> = Vec::new();
        // Contained worker failures: a panicking component (engine bug or
        // injected fault) degrades the solve to `Unknown`, but must not take
        // the sibling components — or the process — down with it.
        let failures: Mutex<Vec<UnknownReason>> = Mutex::new(Vec::new());
        if !parts.components.is_empty() {
            let queue = AtomicUsize::new(0);
            let workers = threads.min(parts.components.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut engine = Engine::new(self);
                            let mut unknowns = Vec::new();
                            loop {
                                let i = queue.fetch_add(1, Ordering::Relaxed);
                                let Some(subset) = parts.components.get(i) else {
                                    break;
                                };
                                let mut slice = lock_recover(&tasks[i])
                                    .input
                                    .take()
                                    .expect("each component is claimed once");
                                // Panic isolation: on unwind the component's
                                // half-weakened slice is abandoned (its cell
                                // keeps no output, so the torn state is
                                // never merged) and the worker moves on.
                                // The engine's memo tables stay valid — they
                                // cache pure functions, unwinding can at
                                // worst lose entries, never corrupt them.
                                let outcome = catch_unwind(AssertUnwindSafe(|| {
                                    if flux_smt::testing::inject_fault("worker")
                                        == Some(flux_smt::testing::Fault::Panic)
                                    {
                                        panic!("injected worker fault");
                                    }
                                    engine.weaken(clauses, subset, kvars, ctx, &mut slice);
                                }));
                                match outcome {
                                    Ok(()) => lock_recover(&tasks[i]).output = Some(slice),
                                    Err(payload) => {
                                        lock_recover(&failures).push(UnknownReason::WorkerPanic {
                                            component: i,
                                            clauses: subset.clone(),
                                            message: panic_message(payload.as_ref()),
                                        })
                                    }
                                }
                                unknowns.append(&mut engine.unknowns);
                            }
                            (engine.stats, engine.smt.stats, unknowns)
                        })
                    })
                    .collect();
                for handle in handles {
                    // Defensive: the in-loop containment should make worker
                    // threads unwind-free, but a panic outside the guarded
                    // region still degrades to `Unknown` instead of
                    // cascading (that worker's statistics are lost).
                    match handle.join() {
                        Ok((stats, smt_stats, mut unknowns)) => {
                            reasons.append(&mut unknowns);
                            worker_stats.push((stats, smt_stats));
                        }
                        Err(payload) => lock_recover(&failures).push(UnknownReason::WorkerPanic {
                            component: usize::MAX,
                            clauses: Vec::new(),
                            message: panic_message(payload.as_ref()),
                        }),
                    }
                }
            });
        }
        for cell in tasks {
            let cell = cell.into_inner().unwrap_or_else(|p| p.into_inner());
            // A panicked component produced no output; its κs keep no entry
            // in the final assignment (the solve reports `Unknown`, so the
            // incomplete solution is diagnostic only).
            if let Some(out) = cell.output {
                solution.merge(out);
            }
        }

        // Concrete-head checks: read-only over the converged assignment and
        // mutually independent, so any worker can take any clause; the
        // per-clause verdicts are re-ordered by clause index afterwards.
        let mut checks: Vec<(usize, Tag, Validity)> = Vec::new();
        if !parts.concrete.is_empty() {
            let queue = AtomicUsize::new(0);
            let workers = threads.min(parts.concrete.len());
            let results: Mutex<Vec<(usize, Tag, Validity)>> = Mutex::new(Vec::new());
            let solution = &*solution;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut engine = Engine::new(self);
                            let mut local = Vec::new();
                            loop {
                                let i = queue.fetch_add(1, Ordering::Relaxed);
                                let Some(&ci) = parts.concrete.get(i) else {
                                    break;
                                };
                                let outcome = catch_unwind(AssertUnwindSafe(|| {
                                    engine.check_concrete_clause(&clauses[ci], kvars, ctx, solution)
                                }));
                                match outcome {
                                    Ok((tag, verdict)) => local.push((ci, tag, verdict)),
                                    Err(payload) => {
                                        lock_recover(&failures).push(UnknownReason::WorkerPanic {
                                            component: usize::MAX,
                                            clauses: vec![ci],
                                            message: panic_message(payload.as_ref()),
                                        })
                                    }
                                }
                            }
                            lock_recover(&results).extend(local);
                            (engine.stats, engine.smt.stats, engine.unknowns)
                        })
                    })
                    .collect();
                for (slot, handle) in handles.into_iter().enumerate() {
                    match handle.join() {
                        Ok((stats, smt_stats, mut unknowns)) => {
                            reasons.append(&mut unknowns);
                            match worker_stats.get_mut(slot) {
                                Some((ws, wsmt)) => {
                                    ws.absorb(&stats);
                                    wsmt.absorb(smt_stats);
                                }
                                None => worker_stats.push((stats, smt_stats)),
                            }
                        }
                        Err(payload) => lock_recover(&failures).push(UnknownReason::WorkerPanic {
                            component: usize::MAX,
                            clauses: Vec::new(),
                            message: panic_message(payload.as_ref()),
                        }),
                    }
                }
            });
            checks = results.into_inner().unwrap_or_else(|p| p.into_inner());
            checks.sort_unstable_by_key(|(ci, ..)| *ci);
        }

        // Deterministic merge: worker-slot order.
        for (stats, smt_stats) in &worker_stats {
            self.stats.absorb(stats);
            self.smt.absorb(*smt_stats);
            self.worker_queries.push(stats.smt_queries);
        }
        reasons.extend(failures.into_inner().unwrap_or_else(|p| p.into_inner()));
        (checks, reasons)
    }

    /// Cumulative statistics of the underlying SMT engine (all sessions and
    /// one-shot queries) since creation; exposed for benchmarking and for
    /// the end-to-end reporting in `flux-check`.
    pub fn smt_stats(&self) -> flux_smt::SmtStats {
        self.smt.stats
    }
}

/// Renders a caught panic payload for [`UnknownReason::WorkerPanic`].
/// Stringifies a `catch_unwind` payload for [`UnknownReason::WorkerPanic`].
/// Shared with `flux-check`'s function-level fan-out (hence public, but
/// plumbing rather than API).
#[doc(hidden)]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn clause_ctx(clause: &Clause, ctx: &SortCtx) -> SortCtx {
    let mut out = ctx.clone();
    for (name, sort) in &clause.binders {
        out.push(*name, *sort);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_logic::{Name, Sort};

    /// Builds the constraint system from §4.2 of the paper (the `ref_join`
    /// example):
    ///
    /// ```text
    /// a:bool   ⟹ (a  ⟹ κ1(1))
    ///          ∧ (¬a ⟹ κ2(2))
    ///          ∧ ∀v. κ1(v) ⟹ κ(v)   ∧ κ(v) ⟹ κ1(v)
    ///          ∧ ∀v. κ2(v) ⟹ κ(v)   ∧ κ(v) ⟹ κ2(v)
    ///          ∧ ∀v. κ(v) ⟹ v ≥ 0          -- the nat postcondition
    /// ```
    #[test]
    fn ref_join_constraints_are_safe() {
        let mut kvars = KVarStore::new();
        let k1 = kvars.fresh(vec![Sort::Int]);
        let k2 = kvars.fresh(vec![Sort::Int]);
        let k = kvars.fresh(vec![Sort::Int]);
        let a = Name::intern("a");
        let val = Name::intern("v");

        let c = Constraint::forall(
            a,
            Sort::Bool,
            Expr::tt(),
            Constraint::conj(vec![
                Constraint::implies(
                    Guard::Pred(Expr::Var(a)),
                    Constraint::kvar(KVarApp::new(k1, vec![Expr::int(1)])),
                ),
                Constraint::implies(
                    Guard::Pred(Expr::not(Expr::Var(a))),
                    Constraint::kvar(KVarApp::new(k2, vec![Expr::int(2)])),
                ),
                Constraint::forall(
                    val,
                    Sort::Int,
                    Expr::tt(),
                    Constraint::conj(vec![
                        Constraint::implies(
                            Guard::KVar(KVarApp::new(k1, vec![Expr::Var(val)])),
                            Constraint::kvar(KVarApp::new(k, vec![Expr::Var(val)])),
                        ),
                        Constraint::implies(
                            Guard::KVar(KVarApp::new(k2, vec![Expr::Var(val)])),
                            Constraint::kvar(KVarApp::new(k, vec![Expr::Var(val)])),
                        ),
                        Constraint::implies(
                            Guard::KVar(KVarApp::new(k, vec![Expr::Var(val)])),
                            Constraint::pred(Expr::ge(Expr::Var(val), Expr::int(0)), 0),
                        ),
                    ]),
                ),
            ]),
        );

        let mut solver = FixpointSolver::with_defaults();
        let result = solver.solve(&c, &kvars, &SortCtx::new());
        match result {
            FixResult::Safe(solution) => {
                // κ must be at least as strong as ν ≥ 0.
                assert!(solution.num_conjuncts(k) >= 1);
            }
            FixResult::Unsafe { failed, .. } => panic!("expected safe, failed tags {failed:?}"),
            FixResult::Unknown { reasons, .. } => panic!("expected safe, degraded: {reasons:?}"),
        }
        assert!(solver.stats.iterations >= 1);
        assert!(solver.stats.smt_queries > 0);
    }

    /// Builds the loop-counter system used by several tests below:
    /// i starts at 0, is incremented while i < n, and after the loop i must
    /// equal n.
    ///
    /// ```text
    /// ∀n. n ≥ 0 ⟹
    ///   κ(0, n)                                   -- entry
    ///   ∧ ∀i. κ(i, n) ∧ i < n ⟹ κ(i+1, n)         -- preservation
    ///   ∧ ∀i. κ(i, n) ∧ ¬(i < n) ⟹ i = n          -- exit goal
    /// ```
    fn loop_counter_system() -> (Constraint, KVarStore) {
        let mut kvars = KVarStore::new();
        let k = kvars.fresh(vec![Sort::Int, Sort::Int]);
        let n = Name::intern("n");
        let i = Name::intern("i");

        let c = Constraint::forall(
            n,
            Sort::Int,
            Expr::ge(Expr::Var(n), Expr::int(0)),
            Constraint::conj(vec![
                Constraint::kvar(KVarApp::new(k, vec![Expr::int(0), Expr::Var(n)])),
                Constraint::forall(
                    i,
                    Sort::Int,
                    Expr::tt(),
                    Constraint::conj(vec![
                        Constraint::implies(
                            Guard::KVar(KVarApp::new(k, vec![Expr::Var(i), Expr::Var(n)])),
                            Constraint::implies(
                                Guard::Pred(Expr::lt(Expr::Var(i), Expr::Var(n))),
                                Constraint::kvar(KVarApp::new(
                                    k,
                                    vec![Expr::Var(i) + Expr::int(1), Expr::Var(n)],
                                )),
                            ),
                        ),
                        Constraint::implies(
                            Guard::KVar(KVarApp::new(k, vec![Expr::Var(i), Expr::Var(n)])),
                            Constraint::implies(
                                Guard::Pred(Expr::not(Expr::lt(Expr::Var(i), Expr::Var(n)))),
                                Constraint::pred(Expr::eq(Expr::Var(i), Expr::Var(n)), 42),
                            ),
                        ),
                    ]),
                ),
            ]),
        );
        (c, kvars)
    }

    /// Two independent copies of the loop-counter system over disjoint κs
    /// and names: the canonical multi-component workload for the
    /// partitioned scheduler (plus a κ-free concrete obligation).
    fn two_component_system() -> (Constraint, KVarStore) {
        let mut kvars = KVarStore::new();
        let mut parts = Vec::new();
        for tag_base in [0usize, 100] {
            let k = kvars.fresh(vec![Sort::Int, Sort::Int]);
            let n = Name::intern(&format!("pc_n{tag_base}"));
            let i = Name::intern(&format!("pc_i{tag_base}"));
            parts.push(Constraint::forall(
                n,
                Sort::Int,
                Expr::ge(Expr::Var(n), Expr::int(0)),
                Constraint::conj(vec![
                    Constraint::kvar(KVarApp::new(k, vec![Expr::int(0), Expr::Var(n)])),
                    Constraint::forall(
                        i,
                        Sort::Int,
                        Expr::tt(),
                        Constraint::conj(vec![
                            Constraint::implies(
                                Guard::KVar(KVarApp::new(k, vec![Expr::Var(i), Expr::Var(n)])),
                                Constraint::implies(
                                    Guard::Pred(Expr::lt(Expr::Var(i), Expr::Var(n))),
                                    Constraint::kvar(KVarApp::new(
                                        k,
                                        vec![Expr::Var(i) + Expr::int(1), Expr::Var(n)],
                                    )),
                                ),
                            ),
                            Constraint::implies(
                                Guard::KVar(KVarApp::new(k, vec![Expr::Var(i), Expr::Var(n)])),
                                Constraint::implies(
                                    Guard::Pred(Expr::not(Expr::lt(Expr::Var(i), Expr::Var(n)))),
                                    Constraint::pred(
                                        Expr::eq(Expr::Var(i), Expr::Var(n)),
                                        tag_base + 42,
                                    ),
                                ),
                            ),
                        ]),
                    ),
                ]),
            ));
        }
        let x = Name::intern("pc_free");
        parts.push(Constraint::forall(
            x,
            Sort::Int,
            Expr::ge(Expr::Var(x), Expr::int(1)),
            Constraint::pred(Expr::gt(Expr::Var(x), Expr::int(0)), 7),
        ));
        (Constraint::conj(parts), kvars)
    }

    fn hermetic(threads: usize) -> FixConfig {
        FixConfig {
            global_cache: false,
            threads,
            ..FixConfig::default()
        }
    }

    /// A loop-invariant inference scenario over the counting-loop system.
    #[test]
    fn loop_counter_invariant_is_inferred() {
        let (c, kvars) = loop_counter_system();
        let mut solver = FixpointSolver::with_defaults();
        let result = solver.solve(&c, &kvars, &SortCtx::new());
        assert!(
            result.is_safe(),
            "expected the invariant i <= n to be inferred"
        );
    }

    /// The incremental engine (sessions + validity cache) and one-shot
    /// solving must produce identical results, and the incremental run must
    /// actually exercise the cache and sessions.
    #[test]
    fn incremental_engine_matches_one_shot_and_hits_cache() {
        let (c, kvars) = loop_counter_system();

        // Model pruning is disabled on both sides: counter-models (and
        // hence which per-candidate queries are skipped) may differ between
        // the session and one-shot pipelines, and this test pins the
        // *query-for-query* equivalence of the two engines.  The global
        // cache is disabled because the test asserts miss/session counts,
        // which other tests solving the same system would perturb.
        let mut incremental = FixpointSolver::new(FixConfig {
            model_pruning: false,
            global_cache: false,
            ..FixConfig::default()
        });
        let inc_result = incremental.solve(&c, &kvars, &SortCtx::new());

        let mut one_shot = FixpointSolver::new(FixConfig {
            incremental: false,
            model_pruning: false,
            global_cache: false,
            ..FixConfig::default()
        });
        let os_result = one_shot.solve(&c, &kvars, &SortCtx::new());

        assert_eq!(inc_result, os_result);
        assert_eq!(incremental.stats.smt_queries, one_shot.stats.smt_queries);
        assert!(
            incremental.stats.cache_hits > 0,
            "iterative weakening repeats queries; expected cache hits, stats: {:?}",
            incremental.stats
        );
        assert!(incremental.stats.sessions > 0);
        assert_eq!(
            incremental.stats.cache_hits + incremental.stats.cache_misses,
            incremental.stats.smt_queries
        );
        // Sessions only open on cache misses, at most one per clause visit.
        assert!(incremental.stats.sessions <= incremental.stats.cache_misses);
        assert_eq!(one_shot.stats.cache_hits, 0);
        assert_eq!(one_shot.stats.sessions, 0);
    }

    /// Counter-model-guided weakening must reach exactly the same fixpoint
    /// as the per-candidate loop — same solution, same safety verdict —
    /// while actually pruning candidates and issuing fewer SMT queries.
    #[test]
    fn model_pruning_preserves_the_fixpoint_with_fewer_queries() {
        let (c, kvars) = loop_counter_system();

        // Hermetic caches: the test counts prunes and queries, which a
        // warm global cache (from other tests on the same system) would
        // silently answer instead.
        let mut pruning = FixpointSolver::new(FixConfig {
            global_cache: false,
            ..FixConfig::default()
        });
        let pruned_result = pruning.solve(&c, &kvars, &SortCtx::new());

        let mut exhaustive = FixpointSolver::new(FixConfig {
            model_pruning: false,
            global_cache: false,
            ..FixConfig::default()
        });
        let exhaustive_result = exhaustive.solve(&c, &kvars, &SortCtx::new());

        assert_eq!(pruned_result, exhaustive_result);
        assert!(
            pruning.stats.model_prunes > 0,
            "weakening this system must prune at least one candidate by \
             counter-model evaluation, stats: {:?}",
            pruning.stats
        );
        assert!(
            pruning.stats.smt_queries < exhaustive.stats.smt_queries,
            "pruning must save SMT queries: {} vs {}",
            pruning.stats.smt_queries,
            exhaustive.stats.smt_queries
        );
    }

    /// Cached verdicts must equal recomputed verdicts: solving the same
    /// system twice with the same solver and with a fresh solver must agree
    /// everywhere (the fresh solver replays the first solver's verdicts
    /// through the global cache).
    #[test]
    fn cached_verdicts_equal_recomputed_verdicts() {
        let (c, kvars) = loop_counter_system();
        let mut solver = FixpointSolver::with_defaults();
        let first = solver.solve(&c, &kvars, &SortCtx::new());
        let second = solver.solve(&c, &kvars, &SortCtx::new());
        assert_eq!(first, second);

        let mut fresh = FixpointSolver::with_defaults();
        assert_eq!(fresh.solve(&c, &kvars, &SortCtx::new()), first);
    }

    /// The process-global cache must replay verdicts across solver
    /// *instances* — the cross-benchmark sharing — and attribute those hits
    /// to `xbench_hits`.  The system uses names no other test touches so
    /// the first solver's misses are genuinely cold.
    #[test]
    fn global_cache_shares_verdicts_across_solver_instances() {
        let mut kvars = KVarStore::new();
        let k = kvars.fresh(vec![Sort::Int]);
        let x = Name::intern("xbench_x");
        let c = Constraint::forall(
            x,
            Sort::Int,
            Expr::ge(Expr::Var(x), Expr::int(3)),
            Constraint::conj(vec![
                Constraint::kvar(KVarApp::new(k, vec![Expr::Var(x)])),
                Constraint::implies(
                    Guard::KVar(KVarApp::new(k, vec![Expr::Var(x)])),
                    Constraint::pred(Expr::gt(Expr::Var(x), Expr::int(0)), 0),
                ),
            ]),
        );

        let mut first = FixpointSolver::with_defaults();
        let first_result = first.solve(&c, &kvars, &SortCtx::new());
        assert!(first_result.is_safe());

        let mut second = FixpointSolver::with_defaults();
        let second_result = second.solve(&c, &kvars, &SortCtx::new());
        assert_eq!(first_result, second_result);
        assert!(
            second.stats.xbench_hits > 0,
            "a fresh solver re-proving the same system must replay verdicts \
             from the global cache, stats: {:?}",
            second.stats
        );
        assert_eq!(
            second.stats.cache_misses, 0,
            "every query of the replayed solve should be cached"
        );

        // A hermetic solver must not see any of it.
        let mut isolated = FixpointSolver::new(FixConfig {
            global_cache: false,
            ..FixConfig::default()
        });
        let isolated_result = isolated.solve(&c, &kvars, &SortCtx::new());
        assert_eq!(isolated_result, second_result);
        assert_eq!(isolated.stats.xbench_hits, 0);
        assert!(isolated.stats.cache_misses > 0);
    }

    /// An unsatisfiable system must blame the right constraint.
    #[test]
    fn failing_constraint_is_blamed_by_tag() {
        let mut kvars = KVarStore::new();
        let k = kvars.fresh(vec![Sort::Int]);
        let x = Name::intern("x");
        let c = Constraint::forall(
            x,
            Sort::Int,
            Expr::tt(),
            Constraint::conj(vec![
                // κ must include every x (so it weakens to true)...
                Constraint::kvar(KVarApp::new(k, vec![Expr::Var(x)])),
                // ...but then x ≥ 0 cannot be proven.  Tag 7 must be blamed.
                Constraint::implies(
                    Guard::KVar(KVarApp::new(k, vec![Expr::Var(x)])),
                    Constraint::pred(Expr::ge(Expr::Var(x), Expr::int(0)), 7),
                ),
                // An unrelated valid obligation with a different tag.
                Constraint::pred(Expr::ge(Expr::Var(x) + Expr::int(1), Expr::Var(x)), 8),
            ]),
        );
        let mut solver = FixpointSolver::with_defaults();
        match solver.solve(&c, &kvars, &SortCtx::new()) {
            FixResult::Unsafe { failed, .. } => assert_eq!(failed, vec![7]),
            other => panic!("expected unsafe, got {other:?}"),
        }
    }

    /// Constraints with no κ variables degenerate to plain validity checks.
    #[test]
    fn concrete_only_constraints() {
        let kvars = KVarStore::new();
        let x = Name::intern("x");
        let ok = Constraint::forall(
            x,
            Sort::Int,
            Expr::ge(Expr::Var(x), Expr::int(1)),
            Constraint::pred(Expr::gt(Expr::Var(x), Expr::int(0)), 0),
        );
        let mut solver = FixpointSolver::with_defaults();
        assert!(solver.solve(&ok, &kvars, &SortCtx::new()).is_safe());

        let bad = Constraint::forall(
            x,
            Sort::Int,
            Expr::ge(Expr::Var(x), Expr::int(0)),
            Constraint::pred(Expr::gt(Expr::Var(x), Expr::int(0)), 3),
        );
        assert!(!solver.solve(&bad, &kvars, &SortCtx::new()).is_safe());
    }

    /// The solution returned for the make_vec example from §4.3: the κ for
    /// the element type must entail ν > 0 given only the pushed value 42.
    #[test]
    fn polymorphic_instantiation_example() {
        let mut kvars = KVarStore::new();
        let k1 = kvars.fresh(vec![Sort::Int]);
        let k2 = kvars.fresh(vec![Sort::Int]);
        let nu = Name::intern("nu");
        let c = Constraint::forall(
            nu,
            Sort::Int,
            Expr::tt(),
            Constraint::conj(vec![
                // κ1(ν) ⟹ κ2(ν)
                Constraint::implies(
                    Guard::KVar(KVarApp::new(k1, vec![Expr::Var(nu)])),
                    Constraint::kvar(KVarApp::new(k2, vec![Expr::Var(nu)])),
                ),
                // ν = 42 ⟹ κ2(ν)
                Constraint::implies(
                    Guard::Pred(Expr::eq(Expr::Var(nu), Expr::int(42))),
                    Constraint::kvar(KVarApp::new(k2, vec![Expr::Var(nu)])),
                ),
                // κ2(ν) ⟹ ν > 0
                Constraint::implies(
                    Guard::KVar(KVarApp::new(k2, vec![Expr::Var(nu)])),
                    Constraint::pred(Expr::gt(Expr::Var(nu), Expr::int(0)), 0),
                ),
            ]),
        );
        let mut solver = FixpointSolver::with_defaults();
        assert!(solver.solve(&c, &kvars, &SortCtx::new()).is_safe());
    }

    /// The partitioned parallel scheduler must reach exactly the fixpoint
    /// of the sequential engine — identical `Solution`, identical verdicts,
    /// identical blamed tags — at every thread count.
    #[test]
    fn parallel_and_sequential_reach_identical_fixpoints() {
        let (c, kvars) = two_component_system();
        let mut sequential = FixpointSolver::new(hermetic(1));
        let reference = sequential.solve(&c, &kvars, &SortCtx::new());
        assert!(reference.is_safe());
        assert_eq!(sequential.stats.partitions, 2);
        assert_eq!(sequential.stats.threads, 1);
        for threads in [2, 3, 8] {
            let mut parallel = FixpointSolver::new(hermetic(threads));
            let result = parallel.solve(&c, &kvars, &SortCtx::new());
            assert_eq!(
                result, reference,
                "threads={threads} diverged from the sequential fixpoint"
            );
            assert_eq!(parallel.stats.threads, threads);
            assert_eq!(parallel.stats.partitions, 2);
        }
    }

    /// Parallel mode must blame exactly the tags the sequential engine
    /// blames, in the same (clause) order, on an unsafe multi-component
    /// system.
    #[test]
    fn parallel_blame_order_matches_sequential() {
        let mut kvars = KVarStore::new();
        let k0 = kvars.fresh(vec![Sort::Int]);
        let k1 = kvars.fresh(vec![Sort::Int]);
        let x = Name::intern("pb_x");
        // Both κs weaken to true, so both guarded obligations fail; an
        // unguarded failing obligation sits between them.
        let c = Constraint::forall(
            x,
            Sort::Int,
            Expr::tt(),
            Constraint::conj(vec![
                Constraint::kvar(KVarApp::new(k0, vec![Expr::Var(x)])),
                Constraint::kvar(KVarApp::new(k1, vec![Expr::Var(x)])),
                Constraint::implies(
                    Guard::KVar(KVarApp::new(k0, vec![Expr::Var(x)])),
                    Constraint::pred(Expr::ge(Expr::Var(x), Expr::int(0)), 11),
                ),
                Constraint::pred(Expr::lt(Expr::Var(x), Expr::Var(x)), 22),
                Constraint::implies(
                    Guard::KVar(KVarApp::new(k1, vec![Expr::Var(x)])),
                    Constraint::pred(Expr::le(Expr::Var(x), Expr::int(9)), 33),
                ),
            ]),
        );
        let mut sequential = FixpointSolver::new(hermetic(1));
        let reference = sequential.solve(&c, &kvars, &SortCtx::new());
        let FixResult::Unsafe { failed, .. } = &reference else {
            panic!("expected unsafe");
        };
        assert_eq!(failed, &vec![11, 22, 33]);
        for threads in [2, 8] {
            let mut parallel = FixpointSolver::new(hermetic(threads));
            assert_eq!(parallel.solve(&c, &kvars, &SortCtx::new()), reference);
        }
    }

    /// Per-worker statistics must merge losslessly: the per-slot query
    /// counts sum to the engine total, and hits plus misses account for
    /// every query, at any thread count.
    #[test]
    fn worker_stats_merge_accounts_for_every_query() {
        let (c, kvars) = two_component_system();
        for threads in [1, 2, 8] {
            let mut solver = FixpointSolver::new(hermetic(threads));
            let result = solver.solve(&c, &kvars, &SortCtx::new());
            assert!(result.is_safe());
            let stats = solver.stats;
            assert_eq!(
                solver.worker_queries.iter().sum::<usize>(),
                stats.smt_queries,
                "threads={threads}: worker slots must account for every query"
            );
            assert!(
                solver.worker_queries.len() <= threads.max(1),
                "threads={threads}: more worker slots than workers"
            );
            assert_eq!(
                stats.cache_hits + stats.cache_misses,
                stats.smt_queries,
                "threads={threads}"
            );
            assert!(
                stats.cross_fn_hits + stats.xbench_hits <= stats.cache_hits,
                "threads={threads}: hit classifications exceed total hits"
            );
        }
    }

    /// A single-component system takes the partitioned scheduler down a
    /// one-worker path whose clause visits are exactly the sequential
    /// engine's — so even the statistics must agree.
    #[test]
    fn single_component_parallel_stats_match_sequential() {
        let (c, kvars) = loop_counter_system();
        let mut sequential = FixpointSolver::new(hermetic(1));
        let seq_result = sequential.solve(&c, &kvars, &SortCtx::new());
        let mut parallel = FixpointSolver::new(hermetic(4));
        let par_result = parallel.solve(&c, &kvars, &SortCtx::new());
        assert_eq!(seq_result, par_result);
        let (mut seq, mut par) = (sequential.stats, parallel.stats);
        // The thread cap is configuration, not work; equalise it before
        // comparing the work counters.
        seq.threads = 0;
        par.threads = 0;
        assert_eq!(seq, par);
    }
}
