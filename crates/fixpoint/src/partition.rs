//! κ-dependency partitioning of a flattened clause set.
//!
//! Weakening one κ's candidate set can only affect clauses that mention that
//! κ (as head or as guard), and a clause can only change κs it mentions.
//! Two clauses whose κ-sets are connected — directly or transitively through
//! other clauses — must therefore be scheduled on the same worker in clause
//! order; clauses whose κ-sets are disjoint influence each other in no way
//! and can weaken concurrently.  This module computes exactly that
//! decomposition: the connected components of the bipartite clause/κ graph,
//! via a union–find over κ identifiers.
//!
//! Concrete-head clauses are *not* part of the weakening interaction: they
//! never change an assignment, they only read the final one.  They are
//! reported separately (and notably do **not** merge the components of their
//! guard κs — a bounds check guarded by two unrelated loop invariants must
//! not serialise those loops' inference).

use crate::constraint::{Clause, Guard, Head};
use crate::kvar::{KVarStore, KVid};
use std::collections::BTreeSet;

/// The κ-dependency decomposition of a flattened clause set.
#[derive(Debug)]
pub struct Partition {
    /// κ-head clause indices of each component, ascending within a
    /// component; components ordered by their smallest clause index, so the
    /// decomposition is a deterministic function of the clause list.
    pub components: Vec<Vec<usize>>,
    /// The κ variables each component reads or writes (heads and guards of
    /// its clauses), in lockstep with `components`.  Distinct components
    /// have disjoint κ-sets — that is the partitioning invariant.
    pub kvar_sets: Vec<BTreeSet<KVid>>,
    /// Concrete-head clause indices, ascending.  These only *read* κ
    /// assignments (possibly from several components) and are checked after
    /// every component has converged.
    pub concrete: Vec<usize>,
}

impl Partition {
    /// Total number of κ-head clauses across all components.
    pub fn kvar_clauses(&self) -> usize {
        self.components.iter().map(Vec::len).sum()
    }
}

/// A union–find (disjoint-set forest) over κ indices, with path halving and
/// union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
    }
}

/// The κ variables mentioned by `clause` (head and guards).
fn clause_kvars(clause: &Clause) -> impl Iterator<Item = KVid> + '_ {
    let head = match &clause.head {
        Head::KVar(app) => Some(app.kvid),
        Head::Pred(..) => None,
    };
    head.into_iter()
        .chain(clause.guards.iter().filter_map(|g| match g {
            Guard::KVar(app) => Some(app.kvid),
            Guard::Pred(_) => None,
        }))
}

/// Partitions `clauses` into κ-dependency components (see the module docs).
pub fn partition(clauses: &[Clause], kvars: &KVarStore) -> Partition {
    let mut uf = UnionFind::new(kvars.len());
    let mut concrete = Vec::new();
    for (ci, clause) in clauses.iter().enumerate() {
        match &clause.head {
            Head::Pred(..) => concrete.push(ci),
            Head::KVar(app) => {
                // The head κ is written and every guard κ is read by the
                // same clause, so they all interact: union them.
                for kvid in clause_kvars(clause) {
                    uf.union(app.kvid.0, kvid.0);
                }
            }
        }
    }
    // Group κ-head clauses by the root of their head κ, in clause order, so
    // component membership and ordering are deterministic.
    let mut components: Vec<Vec<usize>> = Vec::new();
    let mut kvar_sets: Vec<BTreeSet<KVid>> = Vec::new();
    let mut root_to_component: Vec<Option<usize>> = vec![None; kvars.len()];
    for (ci, clause) in clauses.iter().enumerate() {
        let Head::KVar(app) = &clause.head else {
            continue;
        };
        let root = uf.find(app.kvid.0) as usize;
        let slot = match root_to_component[root] {
            Some(slot) => slot,
            None => {
                root_to_component[root] = Some(components.len());
                components.push(Vec::new());
                kvar_sets.push(BTreeSet::new());
                components.len() - 1
            }
        };
        components[slot].push(ci);
        kvar_sets[slot].extend(clause_kvars(clause));
    }
    Partition {
        components,
        kvar_sets,
        concrete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kvar::KVarApp;
    use flux_logic::{Expr, Name, Sort};

    fn v(s: &str) -> Expr {
        Expr::var(Name::intern(s))
    }

    fn kvar_head(k: KVid, guards: Vec<Guard>) -> Clause {
        Clause {
            binders: vec![(Name::intern("pt_x"), Sort::Int)],
            guards,
            head: Head::KVar(KVarApp::new(k, vec![v("pt_x")])),
        }
    }

    fn concrete_head(guards: Vec<Guard>) -> Clause {
        Clause {
            binders: vec![(Name::intern("pt_x"), Sort::Int)],
            guards,
            head: Head::Pred(Expr::ge(v("pt_x"), Expr::int(0)), 0),
        }
    }

    fn guard_k(k: KVid) -> Guard {
        Guard::KVar(KVarApp::new(k, vec![v("pt_x")]))
    }

    #[test]
    fn disjoint_kvar_sets_split_into_components() {
        let mut kvars = KVarStore::new();
        let k0 = kvars.fresh(vec![Sort::Int]);
        let k1 = kvars.fresh(vec![Sort::Int]);
        let clauses = vec![kvar_head(k0, vec![]), kvar_head(k1, vec![])];
        let p = partition(&clauses, &kvars);
        assert_eq!(p.components, vec![vec![0], vec![1]]);
        assert!(p.kvar_sets[0].is_disjoint(&p.kvar_sets[1]));
        assert!(p.concrete.is_empty());
    }

    #[test]
    fn guard_dependencies_merge_components() {
        let mut kvars = KVarStore::new();
        let k0 = kvars.fresh(vec![Sort::Int]);
        let k1 = kvars.fresh(vec![Sort::Int]);
        let k2 = kvars.fresh(vec![Sort::Int]);
        // k1's head depends on k0; k2 is independent.
        let clauses = vec![
            kvar_head(k0, vec![]),
            kvar_head(k1, vec![guard_k(k0)]),
            kvar_head(k2, vec![]),
        ];
        let p = partition(&clauses, &kvars);
        assert_eq!(p.components, vec![vec![0, 1], vec![2]]);
        assert_eq!(
            p.kvar_sets[0],
            BTreeSet::from([k0, k1]),
            "the dependent pair forms one component"
        );
    }

    #[test]
    fn transitive_dependencies_merge_components() {
        let mut kvars = KVarStore::new();
        let k0 = kvars.fresh(vec![Sort::Int]);
        let k1 = kvars.fresh(vec![Sort::Int]);
        let k2 = kvars.fresh(vec![Sort::Int]);
        // k0 ← k1 and k1 ← k2 chain all three together, whichever order the
        // clauses appear in.
        let clauses = vec![
            kvar_head(k2, vec![guard_k(k1)]),
            kvar_head(k0, vec![]),
            kvar_head(k1, vec![guard_k(k0)]),
        ];
        let p = partition(&clauses, &kvars);
        assert_eq!(p.components, vec![vec![0, 1, 2]]);
        assert_eq!(p.kvar_sets[0], BTreeSet::from([k0, k1, k2]));
    }

    #[test]
    fn concrete_clauses_do_not_merge_components() {
        let mut kvars = KVarStore::new();
        let k0 = kvars.fresh(vec![Sort::Int]);
        let k1 = kvars.fresh(vec![Sort::Int]);
        // A concrete obligation guarded by both κs reads both components but
        // must not serialise them.
        let clauses = vec![
            kvar_head(k0, vec![]),
            kvar_head(k1, vec![]),
            concrete_head(vec![guard_k(k0), guard_k(k1)]),
        ];
        let p = partition(&clauses, &kvars);
        assert_eq!(p.components.len(), 2);
        assert_eq!(p.concrete, vec![2]);
    }

    #[test]
    fn clause_order_is_preserved_within_components() {
        let mut kvars = KVarStore::new();
        let k0 = kvars.fresh(vec![Sort::Int]);
        let k1 = kvars.fresh(vec![Sort::Int]);
        // Interleaved clause list: the component must keep ascending clause
        // indices (the sequential visit order restricted to the component).
        let clauses = vec![
            kvar_head(k0, vec![]),
            kvar_head(k1, vec![]),
            kvar_head(k0, vec![guard_k(k0)]),
            kvar_head(k1, vec![guard_k(k1)]),
        ];
        let p = partition(&clauses, &kvars);
        assert_eq!(p.components, vec![vec![0, 2], vec![1, 3]]);
    }
}
