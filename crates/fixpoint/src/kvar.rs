//! Refinement (Horn) variables — the κ variables of §4.2 of the paper.

use flux_logic::{Expr, Name, Sort};

/// Identifier of a refinement variable κ.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KVid(pub u32);

impl std::fmt::Display for KVid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// Declaration of a refinement variable: the sorts of its arguments.
///
/// By convention the first argument is the "value" being refined (the ν of a
/// liquid type template `{ν : κ(ν, x₁, …, xₙ)}`) and the remaining arguments
/// are program variables in scope at the point the template was created.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KVarDecl {
    /// The variable's identifier.
    pub id: KVid,
    /// Sorts of the arguments.
    pub sorts: Vec<Sort>,
    /// Formal parameter names, precomputed at declaration time: formatting
    /// and interning them per [`KVarApp::instantiate`] call showed up in
    /// profiles of the weakening loop.
    formals: Vec<Name>,
}

impl KVarDecl {
    /// The formal parameter name for argument `i` of this κ variable.
    pub fn formal(&self, i: usize) -> Name {
        self.formals[i]
    }

    /// All formal parameter names, in order.
    pub fn formals(&self) -> &[Name] {
        &self.formals
    }
}

/// The canonical formal-parameter name for argument `i` of `kvid`.
pub fn formal_name(kvid: KVid, i: usize) -> Name {
    Name::intern(&format!("{kvid}#arg{i}"))
}

/// A store of κ declarations.
#[derive(Clone, Debug, Default)]
pub struct KVarStore {
    decls: Vec<KVarDecl>,
}

impl KVarStore {
    /// Creates an empty store.
    pub fn new() -> KVarStore {
        KVarStore::default()
    }

    /// Declares a fresh κ variable with the given argument sorts.
    pub fn fresh(&mut self, sorts: Vec<Sort>) -> KVid {
        let id = KVid(self.decls.len() as u32);
        let formals = (0..sorts.len()).map(|i| formal_name(id, i)).collect();
        self.decls.push(KVarDecl { id, sorts, formals });
        id
    }

    /// Looks up a declaration.
    pub fn get(&self, id: KVid) -> &KVarDecl {
        &self.decls[id.0 as usize]
    }

    /// Iterates over all declarations.
    pub fn iter(&self) -> impl Iterator<Item = &KVarDecl> {
        self.decls.iter()
    }

    /// Number of declared κ variables.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// True if no κ variables have been declared.
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }
}

/// An application of a κ variable to actual arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KVarApp {
    /// Which κ variable.
    pub kvid: KVid,
    /// The actual arguments (refinement expressions).
    pub args: Vec<Expr>,
}

impl KVarApp {
    /// Creates an application.
    pub fn new(kvid: KVid, args: Vec<Expr>) -> KVarApp {
        KVarApp { kvid, args }
    }

    /// Substitutes the κ variable's formal parameters by this application's
    /// actual arguments inside `body` (which is expressed over the formals).
    pub fn instantiate(&self, decl: &KVarDecl, body: &Expr) -> Expr {
        self.instantiate_id(decl, flux_logic::ExprId::intern(body))
            .expr()
    }

    /// [`KVarApp::instantiate`] over the hash-consed DAG: shared subterms of
    /// `body` (candidate conjunctions repeat variables and whole qualifiers)
    /// are processed once per call instead of once per occurrence, and no
    /// tree is rebuilt.
    pub fn instantiate_id(&self, decl: &KVarDecl, body: flux_logic::ExprId) -> flux_logic::ExprId {
        body.subst(&self.arg_subst(decl))
    }

    /// The formal-to-actual substitution of this application.
    pub fn arg_subst(&self, decl: &KVarDecl) -> flux_logic::Subst {
        debug_assert_eq!(decl.id, self.kvid);
        decl.formals()
            .iter()
            .copied()
            .zip(self.args.iter().cloned())
            .collect()
    }
}

impl std::fmt::Display for KVarApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(", self.kvid)?;
        for (i, arg) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{arg}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_kvars_get_sequential_ids() {
        let mut store = KVarStore::new();
        let k0 = store.fresh(vec![Sort::Int]);
        let k1 = store.fresh(vec![Sort::Int, Sort::Int]);
        assert_eq!(k0, KVid(0));
        assert_eq!(k1, KVid(1));
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(k1).sorts.len(), 2);
    }

    #[test]
    fn formal_names_are_stable_and_distinct() {
        let mut store = KVarStore::new();
        let k = store.fresh(vec![Sort::Int, Sort::Int]);
        let decl = store.get(k);
        assert_eq!(decl.formal(0), decl.formal(0));
        assert_ne!(decl.formal(0), decl.formal(1));
    }

    #[test]
    fn instantiation_substitutes_formals() {
        let mut store = KVarStore::new();
        let k = store.fresh(vec![Sort::Int, Sort::Int]);
        let decl = store.get(k).clone();
        // body: arg0 <= arg1
        let body = Expr::le(Expr::Var(decl.formal(0)), Expr::Var(decl.formal(1)));
        let app = KVarApp::new(k, vec![Expr::var(Name::intern("i")), Expr::int(10)]);
        let out = app.instantiate(&decl, &body);
        assert_eq!(out, Expr::le(Expr::var(Name::intern("i")), Expr::int(10)));
    }

    #[test]
    fn display_forms() {
        let mut store = KVarStore::new();
        let k = store.fresh(vec![Sort::Int]);
        let app = KVarApp::new(k, vec![Expr::int(3)]);
        assert_eq!(format!("{app}"), "k0(3)");
    }
}
