//! Qualifiers: the quantifier-free templates from which liquid inference
//! builds candidate solutions for κ variables.
//!
//! Following Rondon et al. (PLDI 2008) and the description in §4.2 of the
//! Flux paper, a qualifier is a predicate over a distinguished value
//! variable `ν` and placeholder variables `A`, `B`, … .  Instantiating a
//! qualifier against a κ declaration means substituting `ν` by the κ's
//! first argument and the placeholders by other arguments of matching sort.

use crate::kvar::KVarDecl;
use flux_logic::{Expr, Name, Sort, SortCtx};

/// A qualifier template.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Qualifier {
    /// Human-readable name, for diagnostics.
    pub name: String,
    /// The template parameters (the first is the value variable ν).
    pub params: Vec<(Name, Sort)>,
    /// The template body, over the parameters.
    pub body: Expr,
}

impl Qualifier {
    /// Creates a qualifier.
    pub fn new(name: &str, params: Vec<(Name, Sort)>, body: Expr) -> Qualifier {
        Qualifier {
            name: name.to_owned(),
            params,
            body,
        }
    }

    /// Instantiates the qualifier against a κ declaration, producing every
    /// well-sorted instantiation of the template's parameters by the κ's
    /// formal arguments.  The value parameter ν is always mapped to the
    /// first argument.
    pub fn instantiate(&self, decl: &KVarDecl) -> Vec<Expr> {
        if self.params.is_empty() || decl.sorts.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        // ν must match the sort of the first argument.
        if self.params[0].1 != decl.sorts[0] {
            return Vec::new();
        }
        let formals = decl.formals();
        let mut assignment: Vec<Option<usize>> = vec![None; self.params.len()];
        assignment[0] = Some(0);
        instantiate_rec(self, decl, formals, 1, &mut assignment, &mut out);
        out
    }
}

fn instantiate_rec(
    qualifier: &Qualifier,
    decl: &KVarDecl,
    formals: &[Name],
    index: usize,
    assignment: &mut Vec<Option<usize>>,
    out: &mut Vec<Expr>,
) {
    if index == qualifier.params.len() {
        let subst: flux_logic::Subst = qualifier
            .params
            .iter()
            .zip(assignment.iter())
            .map(|((param, _), arg)| {
                let arg = arg.expect("complete assignment");
                (*param, Expr::Var(formals[arg]))
            })
            .collect();
        out.push(subst.apply(&qualifier.body));
        return;
    }
    let wanted = qualifier.params[index].1;
    for (arg_idx, sort) in decl.sorts.iter().enumerate() {
        // Distinct placeholders map to distinct arguments, and never to the
        // value argument (which is reserved for ν).
        if *sort != wanted || arg_idx == 0 || assignment.contains(&Some(arg_idx)) {
            continue;
        }
        assignment[index] = Some(arg_idx);
        instantiate_rec(qualifier, decl, formals, index + 1, assignment, out);
        assignment[index] = None;
    }
}

/// The default qualifier set used by liquid inference.
///
/// These are the standard "DSOLVE-style" qualifiers: sign information about
/// ν and linear comparisons between ν and one or two other variables in
/// scope.  They are sufficient to infer every loop invariant needed by the
/// benchmark suite (§5 of the paper stresses that such invariants are simple
/// conjunctions of quantifier-free facts).
pub fn default_qualifiers() -> Vec<Qualifier> {
    let nu = Name::intern("$nu");
    let a = Name::intern("$A");
    let b = Name::intern("$B");
    let int = Sort::Int;
    let v = Expr::Var(nu);
    let av = Expr::Var(a);
    let bv = Expr::Var(b);
    vec![
        Qualifier::new("nonneg", vec![(nu, int)], Expr::ge(v.clone(), Expr::int(0))),
        Qualifier::new("pos", vec![(nu, int)], Expr::gt(v.clone(), Expr::int(0))),
        Qualifier::new("zero", vec![(nu, int)], Expr::eq(v.clone(), Expr::int(0))),
        Qualifier::new(
            "eq-var",
            vec![(nu, int), (a, int)],
            Expr::eq(v.clone(), av.clone()),
        ),
        Qualifier::new(
            "le-var",
            vec![(nu, int), (a, int)],
            Expr::le(v.clone(), av.clone()),
        ),
        Qualifier::new(
            "lt-var",
            vec![(nu, int), (a, int)],
            Expr::lt(v.clone(), av.clone()),
        ),
        Qualifier::new(
            "ge-var",
            vec![(nu, int), (a, int)],
            Expr::ge(v.clone(), av.clone()),
        ),
        Qualifier::new(
            "gt-var",
            vec![(nu, int), (a, int)],
            Expr::gt(v.clone(), av.clone()),
        ),
        Qualifier::new(
            "eq-plus-one",
            vec![(nu, int), (a, int)],
            Expr::eq(v.clone(), av.clone() + Expr::int(1)),
        ),
        Qualifier::new(
            "le-minus-one",
            vec![(nu, int), (a, int)],
            Expr::le(v.clone(), av.clone() - Expr::int(1)),
        ),
        Qualifier::new(
            "eq-sum",
            vec![(nu, int), (a, int), (b, int)],
            Expr::eq(v.clone(), av.clone() + bv.clone()),
        ),
        Qualifier::new(
            "eq-diff",
            vec![(nu, int), (a, int), (b, int)],
            Expr::eq(v.clone(), av.clone() - bv.clone()),
        ),
        Qualifier::new(
            "le-sum",
            vec![(nu, int), (a, int), (b, int)],
            Expr::le(v.clone(), av + bv),
        ),
        Qualifier::new("true-bool", vec![(nu, Sort::Bool)], Expr::Var(nu)),
    ]
}

/// Checks that a qualifier's body is well-sorted with respect to its
/// declared parameters (a sanity check used by tests and by user-supplied
/// qualifier sets).
pub fn well_sorted(qualifier: &Qualifier) -> bool {
    let mut ctx = SortCtx::new();
    for (name, sort) in &qualifier.params {
        ctx.push(*name, *sort);
    }
    matches!(qualifier.body.sort_of(&ctx), Ok(Sort::Bool))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kvar::KVarStore;

    #[test]
    fn default_qualifiers_are_well_sorted() {
        for q in default_qualifiers() {
            assert!(well_sorted(&q), "qualifier {} is ill-sorted", q.name);
        }
    }

    #[test]
    fn instantiation_maps_nu_to_first_argument() {
        let mut store = KVarStore::new();
        let k = store.fresh(vec![Sort::Int]);
        let decl = store.get(k);
        let nonneg = &default_qualifiers()[0];
        let instances = nonneg.instantiate(decl);
        assert_eq!(instances.len(), 1);
        assert_eq!(
            instances[0],
            Expr::ge(Expr::Var(decl.formal(0)), Expr::int(0))
        );
    }

    #[test]
    fn two_parameter_qualifiers_enumerate_scope_vars() {
        let mut store = KVarStore::new();
        let k = store.fresh(vec![Sort::Int, Sort::Int, Sort::Int]);
        let decl = store.get(k);
        let le_var = default_qualifiers()
            .into_iter()
            .find(|q| q.name == "le-var")
            .unwrap();
        let instances = le_var.instantiate(decl);
        // ν ≤ arg1 and ν ≤ arg2.
        assert_eq!(instances.len(), 2);
    }

    #[test]
    fn sort_mismatch_produces_no_instances() {
        let mut store = KVarStore::new();
        let k = store.fresh(vec![Sort::Bool]);
        let decl = store.get(k);
        let nonneg = &default_qualifiers()[0];
        assert!(nonneg.instantiate(decl).is_empty());
    }

    #[test]
    fn three_parameter_qualifier_uses_distinct_arguments() {
        let mut store = KVarStore::new();
        let k = store.fresh(vec![Sort::Int, Sort::Int, Sort::Int]);
        let decl = store.get(k);
        let eq_sum = default_qualifiers()
            .into_iter()
            .find(|q| q.name == "eq-sum")
            .unwrap();
        let instances = eq_sum.instantiate(decl);
        // (arg1, arg2) and (arg2, arg1).
        assert_eq!(instances.len(), 2);
    }

    #[test]
    fn boolean_qualifier_only_matches_boolean_kvars() {
        let mut store = KVarStore::new();
        let kb = store.fresh(vec![Sort::Bool]);
        let ki = store.fresh(vec![Sort::Int]);
        let true_bool = default_qualifiers()
            .into_iter()
            .find(|q| q.name == "true-bool")
            .unwrap();
        assert_eq!(true_bool.instantiate(store.get(kb)).len(), 1);
        assert!(true_bool.instantiate(store.get(ki)).is_empty());
    }
}
