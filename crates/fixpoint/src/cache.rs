//! A memoized validity cache keyed on hash-consed expression ids.
//!
//! Iterative weakening re-asks many implications verbatim: a clause whose
//! guard κs kept their assignment between iterations re-issues exactly the
//! same (hypotheses, goal) queries, and the final concrete-head pass repeats
//! queries already answered during the last weakening iteration.  Because
//! weakening is monotone (candidate sets only shrink), such repeats are the
//! common case, and the solver's verdicts are deterministic — so a verdict,
//! once computed, can be replayed for free.
//!
//! Keys are built from [`ExprId`]s (see [`flux_logic`]'s hash-consing):
//! comparing a candidate query against the cache costs a few `u32`
//! comparisons instead of deep tree equality, and interning the hypotheses
//! once per clause amortises the key cost over every goal of that clause.

use flux_logic::{ExprId, Name, Sort};
use flux_smt::Validity;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: the clause's binder context plus hash-consed ids of the
/// hypotheses and the goal.
///
/// The binder list is part of the key because the same names can be bound at
/// different sorts in different clauses, which changes how the solver
/// interprets the (otherwise identical) expressions.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    ctx: Arc<[(Name, Sort)]>,
    hyps: Arc<[ExprId]>,
    goal: ExprId,
}

impl QueryKey {
    /// Builds a key.  `ctx` and `hyps` are shared per clause; only `goal`
    /// varies between the candidate queries of one clause.
    pub fn new(ctx: Arc<[(Name, Sort)]>, hyps: Arc<[ExprId]>, goal: ExprId) -> QueryKey {
        QueryKey { ctx, hyps, goal }
    }
}

/// The memoized validity cache.
///
/// Entries are stamped with the *generation* (solve call) that created them,
/// so a solver shared across the functions of one program can tell replays
/// within a solve apart from cross-function replays.
#[derive(Debug, Default)]
pub struct ValidityCache {
    map: HashMap<QueryKey, (Validity, u64)>,
}

impl ValidityCache {
    /// Creates an empty cache.
    pub fn new() -> ValidityCache {
        ValidityCache::default()
    }

    /// Returns the cached verdict for `key` (and the generation that
    /// inserted it), if any.
    pub fn lookup(&self, key: &QueryKey) -> Option<(Validity, u64)> {
        self.map.get(key).cloned()
    }

    /// Records the verdict for `key`, stamped with `generation`.
    pub fn insert(&mut self, key: QueryKey, verdict: Validity, generation: u64) {
        self.map.insert(key, (verdict, generation));
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops all cached verdicts.  Called by the solver whenever the base
    /// sort context changes between solves: keys do not capture the caller's
    /// uninterpreted-function context, so verdicts may only be replayed
    /// across solves that share it.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_logic::Expr;

    fn key(ctx: &[(Name, Sort)], hyps: &[Expr], goal: &Expr) -> QueryKey {
        QueryKey::new(
            ctx.iter().copied().collect(),
            hyps.iter().map(ExprId::intern).collect(),
            ExprId::intern(goal),
        )
    }

    #[test]
    fn structurally_equal_queries_share_a_key() {
        let x = Name::intern("x");
        let ctx = [(x, Sort::Int)];
        let hyp = Expr::ge(Expr::var(x), Expr::int(0));
        let goal = Expr::ge(Expr::var(x) + Expr::int(1), Expr::int(1));
        // Rebuilt from scratch: still the same key.
        let hyp2 = Expr::ge(Expr::var(x), Expr::int(0));
        let goal2 = Expr::ge(Expr::var(x) + Expr::int(1), Expr::int(1));
        assert_eq!(key(&ctx, &[hyp.clone()], &goal), key(&ctx, &[hyp2], &goal2));
        // A different goal changes the key.
        assert_ne!(
            key(&ctx, &[hyp.clone()], &goal),
            key(&ctx, &[hyp.clone()], &Expr::tt())
        );
        // A different binder sort changes the key.
        assert_ne!(
            key(&ctx, &[hyp.clone()], &goal),
            key(&[(x, Sort::Bool)], &[hyp], &goal)
        );
    }

    #[test]
    fn lookup_returns_inserted_verdict() {
        let x = Name::intern("cx");
        let ctx = [(x, Sort::Int)];
        let goal = Expr::ge(Expr::var(x), Expr::var(x));
        let k = key(&ctx, &[], &goal);
        let mut cache = ValidityCache::new();
        assert!(cache.lookup(&k).is_none());
        cache.insert(k.clone(), Validity::Valid, 3);
        assert_eq!(cache.lookup(&k), Some((Validity::Valid, 3)));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }
}
