//! A memoized validity cache keyed on hash-consed expression ids, shareable
//! across every solver in the process.
//!
//! Iterative weakening re-asks many implications verbatim: a clause whose
//! guard κs kept their assignment between iterations re-issues exactly the
//! same (hypotheses, goal) queries, and the final concrete-head pass repeats
//! queries already answered during the last weakening iteration.  Because
//! weakening is monotone (candidate sets only shrink), such repeats are the
//! common case, and the solver's verdicts are deterministic — so a verdict,
//! once computed, can be replayed for free.
//!
//! Keys are built from [`ExprId`]s (see [`flux_logic`]'s hash-consing):
//! comparing a candidate query against the cache costs a few `u32`
//! comparisons instead of deep tree equality, and interning the hypotheses
//! once per clause amortises the key cost over every goal of that clause.
//! The hash-cons table is append-only for the process lifetime, so an
//! `ExprId` means the same expression forever — which is what makes one
//! **process-global** cache sound: verdicts computed while verifying one
//! benchmark can be replayed for any later benchmark, program or long-lived
//! caller in the same process (see [`global_cache`]).  Keys additionally
//! carry an interned fingerprint of the uninterpreted-function declaration
//! context ([`FnCtxId`]), because the same expression can be interpreted
//! differently under different function signatures; the historical design
//! instead cleared a per-solver cache whenever the base context changed,
//! which is exactly the sharing this cache exists to keep.
//!
//! Entries are stamped with the global solve *epoch* and the *owner*
//! (solver instance) that created them, so a hit can be attributed: a
//! replay within one solve, a cross-function replay (same solver, earlier
//! solve), or a cross-benchmark replay (different solver entirely).

use flux_logic::{env_parse, lock_recover, ExprId, Name, Sort, SortCtx};
use flux_smt::Validity;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Interned identifier of an uninterpreted-function declaration context.
///
/// Two sort contexts with the same function signatures (names, argument
/// sorts, results, in order) get the same id, so equality of ids is
/// equality of everything that can change how a cached query would be
/// interpreted beyond its binders.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FnCtxId(u32);

/// One uninterpreted-function signature: name, argument sorts, result.
type FnSig = (Name, Vec<Sort>, Sort);

/// Interns the function-declaration part of `ctx`.
pub fn intern_fn_ctx(ctx: &SortCtx) -> FnCtxId {
    static TABLE: OnceLock<Mutex<HashMap<Vec<FnSig>, u32>>> = OnceLock::new();
    let sig: Vec<FnSig> = ctx
        .functions()
        .map(|(name, args, ret)| (name, args.to_vec(), ret))
        .collect();
    let mut table = lock_recover(TABLE.get_or_init(|| Mutex::new(HashMap::new())));
    let next = table.len() as u32;
    FnCtxId(*table.entry(sig).or_insert(next))
}

/// Cache key: the clause's binder context plus hash-consed ids of the
/// hypotheses and the goal, under an interned function-declaration context.
///
/// The binder list is part of the key because the same names can be bound at
/// different sorts in different clauses, which changes how the solver
/// interprets the (otherwise identical) expressions.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    fns: FnCtxId,
    ctx: Arc<[(Name, Sort)]>,
    hyps: Arc<[ExprId]>,
    goal: ExprId,
}

impl QueryKey {
    /// Builds a key.  `fns` is shared per solve, `ctx` and `hyps` per
    /// clause; only `goal` varies between the candidate queries of one
    /// clause.
    pub fn new(
        fns: FnCtxId,
        ctx: Arc<[(Name, Sort)]>,
        hyps: Arc<[ExprId]>,
        goal: ExprId,
    ) -> QueryKey {
        QueryKey {
            fns,
            ctx,
            hyps,
            goal,
        }
    }
}

/// One cached verdict, stamped with the solve epoch and solver instance
/// that computed it.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// The memoized verdict.
    pub verdict: Validity,
    /// The global solve epoch (see [`next_epoch`]) during which the entry
    /// was inserted.
    pub epoch: u64,
    /// The solver instance (see [`next_owner`]) that inserted it.
    pub owner: u64,
}

/// The memoized validity cache, optionally capacity-bounded with LRU
/// eviction: a lookup hit refreshes the entry's recency, so a verdict that
/// keeps paying for itself — a library obligation re-proved by every request
/// of a long-running service — survives arbitrarily many cold insertions at
/// the same cap, where the historical FIFO policy would age it out purely by
/// insertion order.  Evicting is always *safe*: a dropped verdict is merely
/// recomputed on the next miss.
#[derive(Debug, Default)]
pub struct ValidityCache {
    map: HashMap<QueryKey, Slot>,
    /// Keys ordered by recency stamp (oldest first); each key appears
    /// exactly once, at its slot's current stamp.
    order: BTreeMap<u64, QueryKey>,
    /// Monotone recency clock; bumped on every insert *and* every hit.
    tick: u64,
    /// Maximum number of entries (`None` = unlimited).
    cap: Option<usize>,
    /// Entries evicted so far.
    evictions: u64,
}

/// One resident entry plus its position in the recency order.
#[derive(Debug)]
struct Slot {
    entry: CacheEntry,
    stamp: u64,
}

impl ValidityCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> ValidityCache {
        ValidityCache::default()
    }

    /// Creates an empty cache holding at most `cap` entries.
    pub fn with_capacity_limit(cap: usize) -> ValidityCache {
        ValidityCache {
            cap: Some(cap),
            ..ValidityCache::default()
        }
    }

    /// Re-caps the cache (`None` = unlimited), evicting immediately if the
    /// current contents exceed the new cap.
    pub fn set_capacity(&mut self, cap: Option<usize>) {
        self.cap = cap;
        self.evict_over_cap();
    }

    /// The current capacity limit, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.cap
    }

    /// Number of entries evicted over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Returns the cached entry for `key`, if any, refreshing its recency:
    /// a hit moves the entry to the young end of the eviction order.
    pub fn lookup(&mut self, key: &QueryKey) -> Option<CacheEntry> {
        let tick = &mut self.tick;
        let order = &mut self.order;
        self.map.get_mut(key).map(|slot| {
            *tick += 1;
            order.remove(&slot.stamp);
            slot.stamp = *tick;
            order.insert(*tick, key.clone());
            slot.entry.clone()
        })
    }

    /// Returns the cached entry for `key` without touching the recency
    /// order (diagnostics; production paths use [`ValidityCache::lookup`]).
    pub fn peek(&self, key: &QueryKey) -> Option<CacheEntry> {
        self.map.get(key).map(|slot| slot.entry.clone())
    }

    /// Records the verdict for `key`, stamped with `epoch` and `owner`,
    /// evicting least-recently-used-first if the cap is exceeded.
    /// Overwriting an existing key also counts as a use.
    pub fn insert(&mut self, key: QueryKey, verdict: Validity, epoch: u64, owner: u64) {
        let entry = CacheEntry {
            verdict,
            epoch,
            owner,
        };
        self.tick += 1;
        let slot = Slot {
            entry,
            stamp: self.tick,
        };
        if let Some(old) = self.map.insert(key.clone(), slot) {
            self.order.remove(&old.stamp);
        }
        self.order.insert(self.tick, key);
        self.evict_over_cap();
    }

    fn evict_over_cap(&mut self) {
        let Some(cap) = self.cap else { return };
        self.trim(cap);
    }

    /// Evicts least-recently-used entries until at most `target` remain —
    /// the generational reclaim hook a long-running service calls between
    /// requests: per-request garbage (entries touched only by one request)
    /// is the coldest tail, while cross-request entries were refreshed by
    /// hits and survive.
    pub fn trim(&mut self, target: usize) {
        while self.map.len() > target {
            let Some((&oldest, _)) = self.order.iter().next() else {
                break;
            };
            let key = self.order.remove(&oldest).expect("stamp was just observed");
            if self.map.remove(&key).is_some() {
                self.evictions += 1;
            }
        }
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops all cached verdicts (the eviction counter survives).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

/// Number of lock-striped shards in the process-global validity cache.
///
/// Eight matches the widest thread sweep the test suite pins
/// (`tests/parallel_equivalence.rs` and the 8-thread `cache_stress`
/// storms): with as many shards as peak workers, two threads only convoy
/// when they touch keys that genuinely hash together, and the per-shard
/// mutex hold time stays the old whole-cache hold time divided by the
/// number of active shards.  A power of two also keeps every cap the
/// suite uses (32, 512, 8192) dividing evenly across shards.
pub const VALIDITY_SHARDS: usize = 8;

/// The process-global validity cache, lock-striped into
/// [`VALIDITY_SHARDS`] independent [`ValidityCache`] shards selected by
/// key hash.  Each shard has its own mutex, recency order, and slice of
/// the global cap, so concurrent per-function solvers miss each other's
/// locks unless their keys actually collide.  All methods take `&self`;
/// aggregate figures (`len`, `evictions`) are sums over shards and thus
/// only approximate instantaneous global state under concurrency — fine
/// for the diagnostics they feed.
pub struct ShardedValidityCache {
    shards: Box<[Mutex<ValidityCache>]>,
    /// Times a shard lock was observed held by another thread (the caller
    /// then blocked).  A convoying diagnostic, not a correctness signal.
    contentions: AtomicU64,
}

impl ShardedValidityCache {
    /// A fresh sharded cache whose *summed* per-shard capacity realises
    /// `cap` (each shard gets `cap / VALIDITY_SHARDS`, rounded up).  Public
    /// so the workspace-level storm tests can exercise a private instance
    /// without racing the process-global one.
    pub fn with_global_capacity(cap: Option<usize>) -> ShardedValidityCache {
        let per_shard = cap.map(|c| c.div_ceil(VALIDITY_SHARDS));
        let shards = (0..VALIDITY_SHARDS)
            .map(|_| {
                Mutex::new(match per_shard {
                    None => ValidityCache::new(),
                    Some(c) => ValidityCache::with_capacity_limit(c),
                })
            })
            .collect();
        ShardedValidityCache {
            shards,
            contentions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &QueryKey) -> &Mutex<ValidityCache> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % VALIDITY_SHARDS]
    }

    /// Locks `mutex`, counting the acquisition as contended if another
    /// thread already held it.  Poisoning recovers as in [`lock_recover`]:
    /// the cache memoizes deterministic verdicts, so no torn state is
    /// observable through its API.
    fn acquire<'a>(&self, mutex: &'a Mutex<ValidityCache>) -> MutexGuard<'a, ValidityCache> {
        match mutex.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contentions.fetch_add(1, Ordering::Relaxed);
                lock_recover(mutex)
            }
            Err(std::sync::TryLockError::Poisoned(_)) => lock_recover(mutex),
        }
    }

    /// Returns the cached entry for `key`, refreshing its recency within
    /// its shard.
    pub fn lookup(&self, key: &QueryKey) -> Option<CacheEntry> {
        self.acquire(self.shard(key)).lookup(key)
    }

    /// Returns the cached entry for `key` without touching recency.
    pub fn peek(&self, key: &QueryKey) -> Option<CacheEntry> {
        self.acquire(self.shard(key)).peek(key)
    }

    /// Records the verdict for `key` in its shard, evicting LRU-first if
    /// that shard's cap is exceeded.
    pub fn insert(&self, key: QueryKey, verdict: Validity, epoch: u64, owner: u64) {
        self.acquire(self.shard(&key))
            .insert(key, verdict, epoch, owner);
    }

    /// Re-caps the cache: each shard gets `cap / VALIDITY_SHARDS` rounded
    /// up, so the *global* cap — the sum of shard caps — is the smallest
    /// shardable value ≥ `cap` (equal to `cap` whenever it divides evenly,
    /// as every cap in the suite does).
    pub fn set_capacity(&self, cap: Option<usize>) {
        let per_shard = cap.map(|c| c.div_ceil(VALIDITY_SHARDS));
        for shard in self.shards.iter() {
            self.acquire(shard).set_capacity(per_shard);
        }
    }

    /// The effective global cap: the sum of per-shard caps.
    pub fn capacity(&self) -> Option<usize> {
        let mut total = 0usize;
        for shard in self.shards.iter() {
            total += self.acquire(shard).capacity()?;
        }
        Some(total)
    }

    /// Total entries evicted across all shards over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| self.acquire(shard).evictions())
            .sum()
    }

    /// Times a caller found a shard lock held by another thread.
    pub fn contentions(&self) -> u64 {
        self.contentions.load(Ordering::Relaxed)
    }

    /// Total cached verdicts across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| self.acquire(shard).len())
            .sum()
    }

    /// True if no shard holds any verdict.
    pub fn is_empty(&self) -> bool {
        self.shards
            .iter()
            .all(|shard| self.acquire(shard).is_empty())
    }

    /// Drops all cached verdicts (eviction counters survive).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            self.acquire(shard).clear();
        }
    }

    /// Evicts LRU-first until at most `target` entries remain globally;
    /// each shard trims to its proportional slice (`target / VALIDITY_SHARDS`
    /// rounded up), so a shard that happens to hold more than its share of
    /// the resident set sheds the excess while cold shards are untouched.
    pub fn trim(&self, target: usize) {
        let per_shard = target.div_ceil(VALIDITY_SHARDS);
        for shard in self.shards.iter() {
            self.acquire(shard).trim(per_shard);
        }
    }
}

/// The process-global validity cache: one sharded map shared by every
/// [`crate::FixpointSolver`] with `global_cache` enabled, so the `table1`
/// harness (and any long-running service) stops re-proving obligations that
/// an earlier benchmark already discharged — and so concurrent per-function
/// solvers don't convoy on a single cache mutex.
pub fn global_cache() -> &'static ShardedValidityCache {
    static CACHE: OnceLock<ShardedValidityCache> = OnceLock::new();
    CACHE.get_or_init(|| {
        let cap = env_parse("FLUX_CACHE_CAP", 0usize);
        ShardedValidityCache::with_global_capacity(match cap {
            0 => None,
            cap => Some(cap),
        })
    })
}

/// Re-caps the process-global validity cache (`None` = unlimited).  The
/// default comes from `FLUX_CACHE_CAP` (unset or 0 = unlimited).  The cap
/// is divided across [`VALIDITY_SHARDS`] shards; the effective global cap
/// is the sum of per-shard caps.
pub fn set_global_cache_capacity(cap: Option<usize>) {
    global_cache().set_capacity(cap);
}

/// Times any caller found a process-global validity-cache shard lock held
/// by another thread, over the process lifetime.  Solvers difference this
/// around a solve to report per-solve contention.
pub fn validity_shard_contentions() -> u64 {
    global_cache().contentions()
}

/// Draws the next solve epoch.  Epochs are strictly increasing across all
/// solvers in the process, so `entry.epoch < current` identifies entries
/// created by an earlier solve call regardless of which solver made them.
pub fn next_epoch() -> u64 {
    static EPOCH: AtomicU64 = AtomicU64::new(1);
    EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// Draws a fresh solver-instance identifier for hit attribution.
pub fn next_owner() -> u64 {
    static OWNER: AtomicU64 = AtomicU64::new(1);
    OWNER.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_logic::Expr;

    fn key(ctx: &[(Name, Sort)], hyps: &[Expr], goal: &Expr) -> QueryKey {
        QueryKey::new(
            intern_fn_ctx(&SortCtx::new()),
            ctx.iter().copied().collect(),
            hyps.iter().map(ExprId::intern).collect(),
            ExprId::intern(goal),
        )
    }

    #[test]
    fn structurally_equal_queries_share_a_key() {
        let x = Name::intern("x");
        let ctx = [(x, Sort::Int)];
        let hyp = Expr::ge(Expr::var(x), Expr::int(0));
        let goal = Expr::ge(Expr::var(x) + Expr::int(1), Expr::int(1));
        // Rebuilt from scratch: still the same key.
        let hyp2 = Expr::ge(Expr::var(x), Expr::int(0));
        let goal2 = Expr::ge(Expr::var(x) + Expr::int(1), Expr::int(1));
        assert_eq!(key(&ctx, &[hyp.clone()], &goal), key(&ctx, &[hyp2], &goal2));
        // A different goal changes the key.
        assert_ne!(
            key(&ctx, &[hyp.clone()], &goal),
            key(&ctx, &[hyp.clone()], &Expr::tt())
        );
        // A different binder sort changes the key.
        assert_ne!(
            key(&ctx, &[hyp.clone()], &goal),
            key(&[(x, Sort::Bool)], &[hyp], &goal)
        );
    }

    #[test]
    fn function_declarations_change_the_key() {
        let x = Name::intern("fx");
        let ctx = [(x, Sort::Int)];
        let goal = Expr::ge(Expr::var(x), Expr::int(0));
        let base = key(&ctx, &[], &goal);
        let mut declared_ctx = SortCtx::new();
        declared_ctx.declare_fn(Name::intern("mystery"), vec![Sort::Int], Sort::Int);
        let declared = QueryKey::new(
            intern_fn_ctx(&declared_ctx),
            ctx.iter().copied().collect(),
            Arc::from([]),
            ExprId::intern(&goal),
        );
        assert_ne!(
            base, declared,
            "extra function declarations must not collide with the base context"
        );
        // And the same declarations intern to the same id.
        let mut declared_again = SortCtx::new();
        declared_again.declare_fn(Name::intern("mystery"), vec![Sort::Int], Sort::Int);
        assert_eq!(intern_fn_ctx(&declared_ctx), intern_fn_ctx(&declared_again));
    }

    #[test]
    fn lookup_returns_inserted_verdict() {
        let x = Name::intern("cx");
        let ctx = [(x, Sort::Int)];
        let goal = Expr::ge(Expr::var(x), Expr::var(x));
        let k = key(&ctx, &[], &goal);
        let mut cache = ValidityCache::new();
        assert!(cache.lookup(&k).is_none());
        cache.insert(k.clone(), Validity::Valid, 3, 7);
        let entry = cache.lookup(&k).expect("entry was just inserted");
        assert_eq!(entry.verdict, Validity::Valid);
        assert_eq!(entry.epoch, 3);
        assert_eq!(entry.owner, 7);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_cap_holds_size_and_evicts_oldest_first() {
        let x = Name::intern("ex");
        let ctx = [(x, Sort::Int)];
        let goal_n = |n: i128| Expr::ge(Expr::var(x), Expr::int(n));
        let mut cache = ValidityCache::with_capacity_limit(3);
        for n in 0..10 {
            cache.insert(key(&ctx, &[], &goal_n(n)), Validity::Valid, 1, 1);
            assert!(cache.len() <= 3, "cache exceeded its cap at insert {n}");
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 7);
        // Newest entries survive, oldest are gone.
        assert!(cache.lookup(&key(&ctx, &[], &goal_n(9))).is_some());
        assert!(cache.lookup(&key(&ctx, &[], &goal_n(0))).is_none());
        // An evicted key can simply be re-inserted (recompute-on-miss).
        cache.insert(key(&ctx, &[], &goal_n(0)), Validity::Valid, 2, 1);
        assert_eq!(
            cache
                .lookup(&key(&ctx, &[], &goal_n(0)))
                .expect("re-inserted")
                .epoch,
            2
        );
        // Overwriting an existing key neither grows the queue nor evicts.
        let before = cache.evictions();
        cache.insert(key(&ctx, &[], &goal_n(0)), Validity::Unknown, 3, 1);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), before);
        // Tightening the cap evicts immediately.
        cache.set_capacity(Some(1));
        assert_eq!(cache.len(), 1);
        // Lifting it stops eviction entirely.
        cache.set_capacity(None);
        for n in 20..30 {
            cache.insert(key(&ctx, &[], &goal_n(n)), Validity::Valid, 4, 1);
        }
        assert_eq!(cache.len(), 11);
    }

    #[test]
    fn lru_hit_refreshes_recency() {
        let x = Name::intern("lx");
        let ctx = [(x, Sort::Int)];
        let goal_n = |n: i128| Expr::ge(Expr::var(x), Expr::int(n));
        let mut cache = ValidityCache::with_capacity_limit(3);
        for n in 0..3 {
            cache.insert(key(&ctx, &[], &goal_n(n)), Validity::Valid, 1, 1);
        }
        // A storm of cold insertions, with the "hot" entry 0 touched before
        // each one: under LRU the hot entry survives every round, while the
        // untouched entries 1 and 2 age out almost immediately.
        for n in 100..120 {
            assert!(
                cache.lookup(&key(&ctx, &[], &goal_n(0))).is_some(),
                "hot entry evicted at cold insert {n} despite constant hits"
            );
            cache.insert(key(&ctx, &[], &goal_n(n)), Validity::Valid, 1, 1);
        }
        assert!(cache.lookup(&key(&ctx, &[], &goal_n(0))).is_some());
        assert!(cache.lookup(&key(&ctx, &[], &goal_n(1))).is_none());
        assert!(cache.lookup(&key(&ctx, &[], &goal_n(2))).is_none());
        // Tightening the cap evicts the cold tail; the hot entry (refreshed
        // by the lookups above) and the newest insertion survive.
        cache.set_capacity(Some(2));
        assert_eq!(cache.len(), 2);
        assert!(cache.peek(&key(&ctx, &[], &goal_n(0))).is_some());
        assert!(cache.peek(&key(&ctx, &[], &goal_n(119))).is_some());
    }

    #[test]
    fn trim_evicts_cold_tail_only() {
        let x = Name::intern("tx");
        let ctx = [(x, Sort::Int)];
        let goal_n = |n: i128| Expr::ge(Expr::var(x), Expr::int(n));
        let mut cache = ValidityCache::new();
        for n in 0..8 {
            cache.insert(key(&ctx, &[], &goal_n(n)), Validity::Valid, 1, 1);
        }
        // Touch 0 and 5: they become the youngest.
        cache.lookup(&key(&ctx, &[], &goal_n(0)));
        cache.lookup(&key(&ctx, &[], &goal_n(5)));
        cache.trim(3);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 5);
        assert!(cache.peek(&key(&ctx, &[], &goal_n(0))).is_some());
        assert!(cache.peek(&key(&ctx, &[], &goal_n(5))).is_some());
        assert!(cache.peek(&key(&ctx, &[], &goal_n(7))).is_some());
        assert!(cache.peek(&key(&ctx, &[], &goal_n(1))).is_none());
    }

    #[test]
    fn sharded_cache_honors_the_summed_shard_cap() {
        let x = Name::intern("shx");
        let ctx = [(x, Sort::Int)];
        let goal_n = |n: i128| Expr::ge(Expr::var(x), Expr::int(n));
        let cache = ShardedValidityCache::with_global_capacity(Some(32));
        assert_eq!(
            cache.capacity(),
            Some(32),
            "32 divides evenly over 8 shards"
        );
        for n in 0..200 {
            cache.insert(key(&ctx, &[], &goal_n(n)), Validity::Valid, 1, 1);
            assert!(
                cache.len() <= 32,
                "global len {} exceeded the summed shard cap at insert {n}",
                cache.len()
            );
        }
        assert!(
            cache.evictions() > 0,
            "a 200-key storm must evict at cap 32"
        );
        // An evicted key recomputes and re-inserts verdict-identically.
        let k = key(&ctx, &[], &goal_n(0));
        assert!(
            cache.lookup(&k).is_none(),
            "key 0 is the coldest; it was evicted"
        );
        cache.insert(k.clone(), Validity::Valid, 2, 1);
        assert_eq!(
            cache.lookup(&k).expect("re-inserted").verdict,
            Validity::Valid
        );
        // trim() reclaims down to (at most shard-rounded) the target.
        cache.trim(8);
        assert!(cache.len() <= 8, "trim(8) left {} entries", cache.len());
        // Re-capping to unlimited stops eviction.
        cache.set_capacity(None);
        assert_eq!(cache.capacity(), None);
        let before = cache.evictions();
        for n in 1000..1100 {
            cache.insert(key(&ctx, &[], &goal_n(n)), Validity::Valid, 3, 1);
        }
        assert_eq!(cache.evictions(), before);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn sharded_cache_spreads_keys_across_shards() {
        let x = Name::intern("spx");
        let ctx = [(x, Sort::Int)];
        let goal_n = |n: i128| Expr::ge(Expr::var(x), Expr::int(n));
        let cache = ShardedValidityCache::with_global_capacity(None);
        for n in 0..256 {
            cache.insert(key(&ctx, &[], &goal_n(n)), Validity::Valid, 1, 1);
        }
        let occupied = cache
            .shards
            .iter()
            .filter(|shard| !lock_recover(shard).is_empty())
            .count();
        assert!(
            occupied > VALIDITY_SHARDS / 2,
            "256 distinct keys landed on only {occupied} of {VALIDITY_SHARDS} shards"
        );
    }

    #[test]
    fn epochs_and_owners_are_strictly_increasing() {
        let e1 = next_epoch();
        let e2 = next_epoch();
        assert!(e2 > e1);
        let o1 = next_owner();
        let o2 = next_owner();
        assert!(o2 > o1);
    }
}
