//! Horn-constraint generation support and the liquid-inference fixpoint
//! solver used by the Flux reproduction.
//!
//! The type checker (crate `flux-check`) does not decide subtyping locally.
//! Instead it emits a [`Constraint`] tree whose leaves are either concrete
//! obligations or applications of unknown refinement variables κ
//! ([`KVid`]).  This crate solves such systems with the classic liquid-types
//! algorithm (§4.2 of the paper):
//!
//! 1. every κ starts as the conjunction of all well-sorted instantiations of
//!    a fixed set of [`Qualifier`] templates,
//! 2. candidates not implied by a clause's hypotheses are removed until a
//!    fixpoint is reached (iterative weakening), and
//! 3. the remaining concrete obligations are checked; failures are reported
//!    with their [`Tag`]s for precise blame.
//!
//! # Example
//!
//! Inferring the invariant of a counting loop:
//!
//! ```
//! use flux_fixpoint::{Constraint, FixpointSolver, Guard, KVarApp, KVarStore};
//! use flux_logic::{Expr, Name, Sort, SortCtx};
//!
//! let mut kvars = KVarStore::new();
//! let k = kvars.fresh(vec![Sort::Int, Sort::Int]);
//! let (i, n) = (Name::intern("i"), Name::intern("n"));
//!
//! // ∀n ≥ 0.  κ(0, n)  ∧  ∀i. κ(i, n) ∧ i < n ⟹ κ(i + 1, n)
//! let constraint = Constraint::forall(
//!     n,
//!     Sort::Int,
//!     Expr::ge(Expr::var(n), Expr::int(0)),
//!     Constraint::conj(vec![
//!         Constraint::kvar(KVarApp::new(k, vec![Expr::int(0), Expr::var(n)])),
//!         Constraint::forall(
//!             i,
//!             Sort::Int,
//!             Expr::tt(),
//!             Constraint::implies(
//!                 Guard::KVar(KVarApp::new(k, vec![Expr::var(i), Expr::var(n)])),
//!                 Constraint::implies(
//!                     Guard::Pred(Expr::lt(Expr::var(i), Expr::var(n))),
//!                     Constraint::kvar(KVarApp::new(
//!                         k,
//!                         vec![Expr::var(i) + Expr::int(1), Expr::var(n)],
//!                     )),
//!                 ),
//!             ),
//!         ),
//!     ]),
//! );
//!
//! let mut solver = FixpointSolver::with_defaults();
//! let result = solver.solve(&constraint, &kvars, &SortCtx::new());
//! assert!(result.is_safe());
//! ```

#![warn(missing_docs)]

mod audit;
mod cache;
mod constraint;
mod kvar;
pub mod partition;
mod qualifier;
mod solve;

pub use audit::{lint_clauses, lint_solution};
pub use cache::{QueryKey, ShardedValidityCache, ValidityCache, VALIDITY_SHARDS};
// Cache internals (the global map, epoch/owner stamping, function-context
// interning) are exposed only so the workspace-level concurrency stress
// tests can hammer them directly; they are test plumbing, not API — hidden
// from docs and free to change.
#[doc(hidden)]
pub use cache::{
    global_cache, intern_fn_ctx, next_epoch, next_owner, set_global_cache_capacity,
    validity_shard_contentions, CacheEntry, FnCtxId,
};
pub use constraint::{Clause, Constraint, Guard, Head, Tag};
pub use kvar::{KVarApp, KVarDecl, KVarStore, KVid};
pub use partition::{partition, Partition};
pub use qualifier::{default_qualifiers, well_sorted, Qualifier};
#[doc(hidden)]
pub use solve::panic_message;
pub use solve::{
    default_threads, FixConfig, FixResult, FixStats, FixpointSolver, Solution, UnknownReason,
};

#[cfg(test)]
mod randtests {
    use super::*;
    use flux_logic::{Expr, Name, Sort, SortCtx};

    /// Any solution returned as Safe must actually satisfy every flattened
    /// clause when κ applications are replaced by the solution (checked with
    /// the SMT solver directly, independent of the weakening loop).
    #[test]
    fn safe_solutions_satisfy_all_clauses() {
        let mut kvars = KVarStore::new();
        let k = kvars.fresh(vec![Sort::Int, Sort::Int]);
        let i = Name::intern("pi");
        let n = Name::intern("pn");
        let constraint = Constraint::forall(
            n,
            Sort::Int,
            Expr::gt(Expr::var(n), Expr::int(0)),
            Constraint::conj(vec![
                Constraint::kvar(KVarApp::new(k, vec![Expr::int(0), Expr::var(n)])),
                Constraint::forall(
                    i,
                    Sort::Int,
                    Expr::tt(),
                    Constraint::implies(
                        Guard::KVar(KVarApp::new(k, vec![Expr::var(i), Expr::var(n)])),
                        Constraint::implies(
                            Guard::Pred(Expr::lt(Expr::var(i), Expr::var(n))),
                            Constraint::kvar(KVarApp::new(
                                k,
                                vec![Expr::var(i) + Expr::int(1), Expr::var(n)],
                            )),
                        ),
                    ),
                ),
            ]),
        );
        let mut solver = FixpointSolver::with_defaults();
        let FixResult::Safe(solution) = solver.solve(&constraint, &kvars, &SortCtx::new()) else {
            panic!("expected safe");
        };
        // Independent validation of each clause.
        let mut smt = flux_smt::Solver::with_defaults();
        for clause in constraint.flatten() {
            let mut ctx = SortCtx::new();
            for (name, sort) in &clause.binders {
                ctx.push(*name, *sort);
            }
            let hyps: Vec<Expr> = clause
                .guards
                .iter()
                .map(|g| match g {
                    Guard::Pred(p) => p.clone(),
                    Guard::KVar(app) => solution.apply(app, &kvars),
                })
                .collect();
            let goal = match &clause.head {
                Head::Pred(p, _) => p.clone(),
                Head::KVar(app) => solution.apply(app, &kvars),
            };
            assert!(
                smt.check_valid_imp(&ctx, &hyps, &goal).is_valid(),
                "clause not satisfied by returned solution"
            );
        }
    }

    /// For every entry value and bound in a small grid, a simple counting
    /// loop constraint system must always be reported safe (the solver must
    /// never be flaky on this family).  This enumerates the full grid the
    /// old property-based test sampled from.
    #[test]
    fn counting_loops_with_random_strides_are_safe() {
        for start in 0i128..3 {
            for bound_low in 0i128..4 {
                let mut kvars = KVarStore::new();
                let k = kvars.fresh(vec![Sort::Int, Sort::Int]);
                let i = Name::intern("qi");
                let n = Name::intern("qn");
                let constraint = Constraint::forall(
                    n,
                    Sort::Int,
                    Expr::ge(Expr::var(n), Expr::int(bound_low)),
                    Constraint::conj(vec![
                        Constraint::implies(
                            Guard::Pred(Expr::le(Expr::int(start), Expr::var(n))),
                            Constraint::kvar(KVarApp::new(k, vec![Expr::int(start), Expr::var(n)])),
                        ),
                        Constraint::forall(
                            i,
                            Sort::Int,
                            Expr::tt(),
                            Constraint::implies(
                                Guard::KVar(KVarApp::new(k, vec![Expr::var(i), Expr::var(n)])),
                                Constraint::implies(
                                    Guard::Pred(Expr::lt(Expr::var(i), Expr::var(n))),
                                    Constraint::conj(vec![
                                        Constraint::kvar(KVarApp::new(
                                            k,
                                            vec![Expr::var(i) + Expr::int(1), Expr::var(n)],
                                        )),
                                        Constraint::pred(Expr::lt(Expr::var(i), Expr::var(n)), 0),
                                    ]),
                                ),
                            ),
                        ),
                    ]),
                );
                let mut solver = FixpointSolver::with_defaults();
                assert!(
                    solver.solve(&constraint, &kvars, &SortCtx::new()).is_safe(),
                    "start={start} bound_low={bound_low}"
                );
            }
        }
    }

    /// Solving under the full audit tier — clause/candidate lint up front,
    /// certified SMT theory steps, independent re-validation of the
    /// converged solution — yields exactly the same solution as solving
    /// unaudited, and the audit counters actually move.  (The tier is set
    /// through the config, not the process-global `FLUX_AUDIT`, so the test
    /// is hermetic.)
    #[test]
    fn full_audit_tier_solves_identically() {
        let mut kvars = KVarStore::new();
        let k = kvars.fresh(vec![Sort::Int, Sort::Int]);
        let i = Name::intern("ri");
        let n = Name::intern("rn");
        let constraint = Constraint::forall(
            n,
            Sort::Int,
            Expr::gt(Expr::var(n), Expr::int(0)),
            Constraint::conj(vec![
                Constraint::kvar(KVarApp::new(k, vec![Expr::int(0), Expr::var(n)])),
                Constraint::forall(
                    i,
                    Sort::Int,
                    Expr::tt(),
                    Constraint::implies(
                        Guard::KVar(KVarApp::new(k, vec![Expr::var(i), Expr::var(n)])),
                        Constraint::implies(
                            Guard::Pred(Expr::lt(Expr::var(i), Expr::var(n))),
                            Constraint::conj(vec![
                                Constraint::kvar(KVarApp::new(
                                    k,
                                    vec![Expr::var(i) + Expr::int(1), Expr::var(n)],
                                )),
                                Constraint::pred(Expr::le(Expr::int(0), Expr::var(i)), 11),
                            ]),
                        ),
                    ),
                ),
            ]),
        );
        let audited_config = FixConfig {
            smt: flux_smt::SmtConfig {
                audit: flux_logic::AuditTier::Full,
                ..flux_smt::SmtConfig::default()
            },
            ..FixConfig::default()
        };
        let plain_config = FixConfig {
            smt: flux_smt::SmtConfig {
                audit: flux_logic::AuditTier::Off,
                ..flux_smt::SmtConfig::default()
            },
            ..FixConfig::default()
        };
        let ctx = SortCtx::new();
        let mut audited = FixpointSolver::new(audited_config);
        let mut plain = FixpointSolver::new(plain_config);
        let (FixResult::Safe(a), FixResult::Safe(p)) = (
            audited.solve(&constraint, &kvars, &ctx),
            plain.solve(&constraint, &kvars, &ctx),
        ) else {
            panic!("expected both solves safe");
        };
        assert_eq!(
            a.of(k),
            p.of(k),
            "audit tier changed the inferred invariant"
        );
        assert!(audited.stats.lint_checks > 0, "lint never ran");
        assert_eq!(
            audited.stats.revalidations,
            constraint.flatten().len(),
            "every clause must be independently re-validated"
        );
        assert_eq!(plain.stats.lint_checks, 0);
        assert_eq!(plain.stats.revalidations, 0);
    }
}
