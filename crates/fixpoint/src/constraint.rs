//! Horn constraints.
//!
//! The checker produces a *constraint tree* mirroring the structure of the
//! typing derivation (binders and guards on the way down, subtyping heads at
//! the leaves), exactly like the constraints described in §4.2 of the paper.
//! Before solving, the tree is flattened into clauses of the form
//!
//! ```text
//!   ∀ binders. guard₁ ∧ … ∧ guardₙ  ⟹  head
//! ```
//!
//! where guards are concrete predicates or κ applications and the head is a
//! concrete predicate (tagged, for blame) or a κ application.

use crate::kvar::KVarApp;
use flux_logic::{Expr, Name, Sort};

/// A tag identifying the program point / check that produced a constraint,
/// used to report errors when a constraint cannot be satisfied.
pub type Tag = usize;

/// The head of a Horn clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Head {
    /// A concrete predicate that must hold; the tag names the originating
    /// check for error reporting.
    Pred(Expr, Tag),
    /// A κ application that must be implied.
    KVar(KVarApp),
}

/// A hypothesis of a Horn clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Guard {
    /// A concrete predicate assumed to hold.
    Pred(Expr),
    /// A κ application assumed to hold.
    KVar(KVarApp),
}

/// A constraint tree, as produced by the type checker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Constraint {
    /// `∀ name: sort. pred ⟹ rest`
    ForAll(Name, Sort, Expr, Box<Constraint>),
    /// `guard ⟹ rest` where the guard may be a κ application.
    Implies(Guard, Box<Constraint>),
    /// Conjunction of sub-constraints.
    Conj(Vec<Constraint>),
    /// A leaf obligation.
    Head(Head),
    /// The trivially-true constraint.
    True,
}

impl Constraint {
    /// A leaf concrete obligation.
    pub fn pred(p: Expr, tag: Tag) -> Constraint {
        if p.is_trivially_true() {
            Constraint::True
        } else {
            Constraint::Head(Head::Pred(p, tag))
        }
    }

    /// A leaf κ obligation.
    pub fn kvar(app: KVarApp) -> Constraint {
        Constraint::Head(Head::KVar(app))
    }

    /// Conjunction, dropping trivially-true children.
    pub fn conj(children: Vec<Constraint>) -> Constraint {
        let mut non_trivial: Vec<Constraint> = children
            .into_iter()
            .filter(|c| !matches!(c, Constraint::True))
            .collect();
        match non_trivial.len() {
            0 => Constraint::True,
            1 => non_trivial.pop().expect("length checked"),
            _ => Constraint::Conj(non_trivial),
        }
    }

    /// Wraps a constraint in a universally quantified binder with a guard.
    pub fn forall(name: Name, sort: Sort, pred: Expr, inner: Constraint) -> Constraint {
        if matches!(inner, Constraint::True) {
            Constraint::True
        } else {
            Constraint::ForAll(name, sort, pred, Box::new(inner))
        }
    }

    /// Wraps a constraint in a guard.
    pub fn implies(guard: Guard, inner: Constraint) -> Constraint {
        match (&guard, &inner) {
            (_, Constraint::True) => Constraint::True,
            (Guard::Pred(p), _) if p.is_trivially_true() => inner,
            _ => Constraint::Implies(guard, Box::new(inner)),
        }
    }

    /// Number of leaf obligations.
    pub fn num_heads(&self) -> usize {
        match self {
            Constraint::True => 0,
            Constraint::Head(_) => 1,
            Constraint::ForAll(_, _, _, inner) | Constraint::Implies(_, inner) => inner.num_heads(),
            Constraint::Conj(children) => children.iter().map(Constraint::num_heads).sum(),
        }
    }

    /// Flattens the tree into clauses.
    pub fn flatten(&self) -> Vec<Clause> {
        let mut out = Vec::new();
        let mut binders = Vec::new();
        let mut guards = Vec::new();
        flatten_rec(self, &mut binders, &mut guards, &mut out);
        out
    }
}

/// A flattened Horn clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clause {
    /// Universally quantified variables in scope, with their sorts.
    pub binders: Vec<(Name, Sort)>,
    /// Hypotheses.
    pub guards: Vec<Guard>,
    /// The obligation.
    pub head: Head,
}

impl Clause {
    /// True if the clause's head is a concrete predicate.
    pub fn is_concrete(&self) -> bool {
        matches!(self.head, Head::Pred(..))
    }
}

fn flatten_rec(
    constraint: &Constraint,
    binders: &mut Vec<(Name, Sort)>,
    guards: &mut Vec<Guard>,
    out: &mut Vec<Clause>,
) {
    match constraint {
        Constraint::True => {}
        Constraint::Head(head) => out.push(Clause {
            binders: binders.clone(),
            guards: guards.clone(),
            head: head.clone(),
        }),
        Constraint::Conj(children) => {
            for child in children {
                flatten_rec(child, binders, guards, out);
            }
        }
        Constraint::ForAll(name, sort, pred, inner) => {
            binders.push((*name, *sort));
            let pushed_guard = if pred.is_trivially_true() {
                false
            } else {
                guards.push(Guard::Pred(pred.clone()));
                true
            };
            flatten_rec(inner, binders, guards, out);
            if pushed_guard {
                guards.pop();
            }
            binders.pop();
        }
        Constraint::Implies(guard, inner) => {
            guards.push(guard.clone());
            flatten_rec(inner, binders, guards, out);
            guards.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kvar::{KVarStore, KVid};

    fn v(s: &str) -> Expr {
        Expr::var(Name::intern(s))
    }

    #[test]
    fn trivially_true_heads_are_dropped() {
        assert_eq!(Constraint::pred(Expr::tt(), 0), Constraint::True);
        assert_eq!(
            Constraint::conj(vec![Constraint::True, Constraint::True]),
            Constraint::True
        );
    }

    #[test]
    fn conj_of_single_child_is_that_child() {
        let c = Constraint::pred(Expr::ge(v("x"), Expr::int(0)), 1);
        assert_eq!(Constraint::conj(vec![Constraint::True, c.clone()]), c);
    }

    #[test]
    fn forall_over_true_is_true() {
        let c = Constraint::forall(Name::intern("x"), Sort::Int, Expr::tt(), Constraint::True);
        assert_eq!(c, Constraint::True);
    }

    #[test]
    fn flatten_collects_binders_and_guards() {
        // ∀ n:int. n >= 0 ⟹ (n+1 >= 0  ∧  ∀ m:int. m >= n ⟹ m >= 0)
        let inner = Constraint::conj(vec![
            Constraint::pred(Expr::ge(v("n") + Expr::int(1), Expr::int(0)), 1),
            Constraint::forall(
                Name::intern("m"),
                Sort::Int,
                Expr::ge(v("m"), v("n")),
                Constraint::pred(Expr::ge(v("m"), Expr::int(0)), 2),
            ),
        ]);
        let c = Constraint::forall(
            Name::intern("n"),
            Sort::Int,
            Expr::ge(v("n"), Expr::int(0)),
            inner,
        );
        let clauses = c.flatten();
        assert_eq!(clauses.len(), 2);
        assert_eq!(clauses[0].binders.len(), 1);
        assert_eq!(clauses[0].guards.len(), 1);
        assert_eq!(clauses[1].binders.len(), 2);
        assert_eq!(clauses[1].guards.len(), 2);
        assert!(clauses.iter().all(Clause::is_concrete));
    }

    #[test]
    fn kvar_heads_are_not_concrete() {
        let mut store = KVarStore::new();
        let k = store.fresh(vec![Sort::Int]);
        let c = Constraint::kvar(KVarApp::new(k, vec![v("x")]));
        let clauses = c.flatten();
        assert_eq!(clauses.len(), 1);
        assert!(!clauses[0].is_concrete());
    }

    #[test]
    fn num_heads_counts_leaves() {
        let c = Constraint::conj(vec![
            Constraint::pred(Expr::ge(v("a"), Expr::int(0)), 0),
            Constraint::pred(Expr::ge(v("b"), Expr::int(0)), 1),
            Constraint::True,
        ]);
        assert_eq!(c.num_heads(), 2);
    }

    #[test]
    fn implies_with_kvar_guard_survives_flattening() {
        let mut store = KVarStore::new();
        let k: KVid = store.fresh(vec![Sort::Int]);
        let c = Constraint::implies(
            Guard::KVar(KVarApp::new(k, vec![v("x")])),
            Constraint::pred(Expr::ge(v("x"), Expr::int(0)), 7),
        );
        let clauses = c.flatten();
        assert_eq!(clauses.len(), 1);
        assert_eq!(clauses[0].guards.len(), 1);
        assert!(matches!(clauses[0].guards[0], Guard::KVar(_)));
    }
}
