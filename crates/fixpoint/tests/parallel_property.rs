//! Property tests for the κ-dependency partitioner and the parallel
//! weakening scheduler, over randomly generated clause systems with a
//! *known* component structure.
//!
//! The generator plants a configurable number of independent κ-chains
//! (disjoint κs, disjoint binder names), so the expected decomposition is
//! known by construction; the partitioner must recover exactly it, must
//! never co-schedule two clauses from different planted chains, and must
//! never split two clauses that share a κ.  On top of the structural
//! property, the parallel and sequential engines must reach identical
//! fixpoints on every generated system.
//!
//! The environment has no crates.io access, so instead of proptest this
//! uses the workspace's deterministic xorshift generator
//! ([`flux_smt::testing::Rng`]): every failure reproduces by seed.

use flux_fixpoint::{
    partition, Constraint, FixConfig, FixpointSolver, Guard, Head, KVarApp, KVarStore, KVid,
};
use flux_logic::{Expr, Name, Sort, SortCtx};
use flux_smt::testing::Rng;
use std::collections::BTreeSet;

/// One planted component: a chain of κs over fresh names, κ_{j+1} guarded
/// by κ_j, with a loop-shaped first κ and a concrete exit obligation.
/// Returns the generated sub-constraint and the chain's κs.
fn gen_component(rng: &mut Rng, kvars: &mut KVarStore, uid: String) -> (Constraint, Vec<KVid>) {
    let chain_len = 1 + rng.below(3) as usize;
    let chain: Vec<KVid> = (0..chain_len)
        .map(|_| kvars.fresh(vec![Sort::Int, Sort::Int]))
        .collect();
    let n = Name::intern(&format!("pp_n_{uid}"));
    let i = Name::intern(&format!("pp_i_{uid}"));
    let start = rng.int_in(0, 2);
    let lower = rng.int_in(0, 2);
    // An always-true or sometimes-false exit goal, so both Safe and Unsafe
    // systems are generated (the engines must agree on both).
    let exit_goal = if rng.flip() {
        Expr::ge(Expr::var(i), Expr::int(start.min(lower)))
    } else {
        Expr::eq(Expr::var(i), Expr::var(n) + Expr::int(rng.int_in(0, 1)))
    };
    let k0 = chain[0];
    let mut body = vec![
        // Entry: κ0(start, n), guarded so it is satisfiable.
        Constraint::implies(
            Guard::Pred(Expr::le(Expr::int(start), Expr::var(n))),
            Constraint::kvar(KVarApp::new(k0, vec![Expr::int(start), Expr::var(n)])),
        ),
        // Preservation: κ0(i, n) ∧ i < n ⟹ κ0(i+1, n).
        Constraint::implies(
            Guard::KVar(KVarApp::new(k0, vec![Expr::var(i), Expr::var(n)])),
            Constraint::implies(
                Guard::Pred(Expr::lt(Expr::var(i), Expr::var(n))),
                Constraint::kvar(KVarApp::new(
                    k0,
                    vec![Expr::var(i) + Expr::int(1), Expr::var(n)],
                )),
            ),
        ),
    ];
    // Chain links: κ_{j}(i, n) ⟹ κ_{j+1}(i, n), tying the chain into one
    // dependency component.
    for window in chain.windows(2) {
        body.push(Constraint::implies(
            Guard::KVar(KVarApp::new(window[0], vec![Expr::var(i), Expr::var(n)])),
            Constraint::kvar(KVarApp::new(window[1], vec![Expr::var(i), Expr::var(n)])),
        ));
    }
    // Concrete exit obligation on the last κ of the chain.
    let last = *chain.last().expect("chain is nonempty");
    body.push(Constraint::implies(
        Guard::KVar(KVarApp::new(last, vec![Expr::var(i), Expr::var(n)])),
        Constraint::implies(
            Guard::Pred(Expr::not(Expr::lt(Expr::var(i), Expr::var(n)))),
            Constraint::pred(exit_goal, kvars.len()),
        ),
    ));
    let c = Constraint::forall(
        n,
        Sort::Int,
        Expr::ge(Expr::var(n), Expr::int(lower)),
        Constraint::forall(i, Sort::Int, Expr::tt(), Constraint::conj(body)),
    );
    (c, chain)
}

/// The κs mentioned by a flattened clause (head and guards).
fn clause_kvars(clause: &flux_fixpoint::Clause) -> BTreeSet<KVid> {
    let mut out = BTreeSet::new();
    if let Head::KVar(app) = &clause.head {
        out.insert(app.kvid);
    }
    for guard in &clause.guards {
        if let Guard::KVar(app) = guard {
            out.insert(app.kvid);
        }
    }
    out
}

fn hermetic(threads: usize) -> FixConfig {
    FixConfig {
        global_cache: false,
        threads,
        ..FixConfig::default()
    }
}

#[test]
fn partitioner_recovers_planted_components_and_fixpoints_agree() {
    let mut safe_seen = 0usize;
    let mut unsafe_seen = 0usize;
    for seed in 0..110u64 {
        let mut rng = Rng::new(0x9A87_110E_5EED ^ (seed.wrapping_mul(0x9E37_79B9)));
        let planted = 1 + rng.below(3) as usize;
        let mut kvars = KVarStore::new();
        let mut parts = Vec::new();
        let mut planted_chains: Vec<BTreeSet<KVid>> = Vec::new();
        for comp in 0..planted {
            let (c, chain) = gen_component(&mut rng, &mut kvars, format!("{seed}_{comp}"));
            parts.push(c);
            planted_chains.push(chain.into_iter().collect());
        }
        let constraint = Constraint::conj(parts);
        let clauses = constraint.flatten();
        let decomposition = partition(&clauses, &kvars);

        // The partitioner must recover exactly the planted structure: one
        // component per chain, κ-sets pairwise disjoint.
        assert_eq!(
            decomposition.components.len(),
            planted,
            "seed {seed}: expected {planted} components, got {}",
            decomposition.components.len()
        );
        for (a, set_a) in decomposition.kvar_sets.iter().enumerate() {
            for set_b in decomposition.kvar_sets.iter().skip(a + 1) {
                assert!(
                    set_a.is_disjoint(set_b),
                    "seed {seed}: two components share a κ"
                );
            }
            // Each recovered κ-set is exactly one planted chain.
            assert!(
                planted_chains.iter().any(|chain| chain == set_a),
                "seed {seed}: component κ-set {set_a:?} matches no planted chain"
            );
        }

        // No two dependent clauses may ever be scheduled apart: clauses
        // sharing a κ must sit in the same component, and every κ-head
        // clause must be scheduled exactly once.
        let mut component_of = vec![usize::MAX; clauses.len()];
        for (slot, member) in decomposition.components.iter().enumerate() {
            for &ci in member {
                assert_eq!(
                    component_of[ci],
                    usize::MAX,
                    "seed {seed}: clause {ci} scheduled twice"
                );
                component_of[ci] = slot;
            }
        }
        for (a, ca) in clauses.iter().enumerate() {
            if !matches!(ca.head, Head::KVar(_)) {
                assert_eq!(
                    component_of[a],
                    usize::MAX,
                    "seed {seed}: concrete clause {a} was scheduled for weakening"
                );
                continue;
            }
            assert_ne!(
                component_of[a],
                usize::MAX,
                "seed {seed}: κ-head clause {a} was never scheduled"
            );
            let kvars_a = clause_kvars(ca);
            for (b, cb) in clauses.iter().enumerate().skip(a + 1) {
                if !matches!(cb.head, Head::KVar(_)) {
                    continue;
                }
                if !kvars_a.is_disjoint(&clause_kvars(cb)) {
                    assert_eq!(
                        component_of[a], component_of[b],
                        "seed {seed}: dependent clauses {a} and {b} were co-scheduled apart"
                    );
                }
            }
        }

        // The parallel and sequential engines must reach identical
        // fixpoints (solution, verdict, blame) on every generated system.
        let mut sequential = FixpointSolver::new(hermetic(1));
        let reference = sequential.solve(&constraint, &kvars, &SortCtx::new());
        for threads in [2, 4] {
            let mut parallel = FixpointSolver::new(hermetic(threads));
            let result = parallel.solve(&constraint, &kvars, &SortCtx::new());
            assert_eq!(
                result, reference,
                "seed {seed}: threads={threads} diverged from the sequential fixpoint"
            );
        }
        if reference.is_safe() {
            safe_seen += 1;
        } else {
            unsafe_seen += 1;
        }
    }
    // The generator must exercise both verdicts, or the agreement property
    // is vacuous on one side.
    assert!(
        safe_seen > 10,
        "too few safe systems generated: {safe_seen}"
    );
    assert!(
        unsafe_seen > 10,
        "too few unsafe systems generated: {unsafe_seen}"
    );
}
