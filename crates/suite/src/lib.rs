//! The benchmark suite of §5: the vector-manipulating programs drawn from
//! DSOLVE plus the Wave sandboxing fragments, each in a Flux flavour (refined
//! signatures only) and a baseline flavour (contracts plus loop-invariant
//! annotations).
//!
//! The harness in `flux-bench` runs both verifiers over these programs and
//! regenerates the rows of Table 1: LOC, specification lines, annotation
//! lines (and their share of the code) and verification time.

#![warn(missing_docs)]

pub mod programs;

use flux_syntax::SourceMetrics;

/// One benchmark: the same program in its two specification styles.
#[derive(Clone, Copy, Debug)]
pub struct Benchmark {
    /// The name used in Table 1.
    pub name: &'static str,
    /// Short description of the verification goal.
    pub description: &'static str,
    /// Source verified by Flux (refined signatures, no invariants).
    pub flux_src: &'static str,
    /// Source verified by the program-logic baseline (contracts plus
    /// `invariant!` annotations).
    pub baseline_src: &'static str,
    /// Whether this entry is a trusted library specification rather than a
    /// verified benchmark (the RVec row of Table 1).
    pub is_library: bool,
}

impl Benchmark {
    /// Metrics of the Flux flavour.
    pub fn flux_metrics(&self) -> SourceMetrics {
        SourceMetrics::of_source(self.flux_src)
    }

    /// Metrics of the baseline flavour.
    pub fn baseline_metrics(&self) -> SourceMetrics {
        SourceMetrics::of_source(self.baseline_src)
    }
}

/// The full benchmark suite, in the order of Table 1.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "bsearch",
            description: "binary search: probe index stays within the vector",
            flux_src: programs::BSEARCH_FLUX,
            baseline_src: programs::BSEARCH_BASELINE,
            is_library: false,
        },
        Benchmark {
            name: "dotprod",
            description: "dot product of two equal-length vectors",
            flux_src: programs::DOTPROD_FLUX,
            baseline_src: programs::DOTPROD_BASELINE,
            is_library: false,
        },
        Benchmark {
            name: "fft",
            description: "FFT index juggling across nested loops",
            flux_src: programs::FFT_FLUX,
            baseline_src: programs::FFT_BASELINE,
            is_library: false,
        },
        Benchmark {
            name: "heapsort",
            description: "heap sort sift-down and both phases",
            flux_src: programs::HEAPSORT_FLUX,
            baseline_src: programs::HEAPSORT_BASELINE,
            is_library: false,
        },
        Benchmark {
            name: "simplex",
            description: "simplex pivoting over a dense RMat tableau",
            flux_src: programs::SIMPLEX_FLUX,
            baseline_src: programs::SIMPLEX_BASELINE,
            is_library: false,
        },
        Benchmark {
            name: "kmeans",
            description: "k-means fragments: centres as vectors of vectors",
            flux_src: programs::KMEANS_FLUX,
            baseline_src: programs::KMEANS_BASELINE,
            is_library: false,
        },
        Benchmark {
            name: "kmp",
            description: "KMP table entries are valid pattern indices",
            flux_src: programs::KMP_FLUX,
            baseline_src: programs::KMP_BASELINE,
            is_library: false,
        },
        Benchmark {
            name: "wave",
            description: "Wave sandbox: guest accesses stay inside the region",
            flux_src: programs::WAVE_FLUX,
            baseline_src: programs::WAVE_BASELINE,
            is_library: false,
        },
    ]
}

/// The trusted library rows of Table 1 (RVec and its Prusti-style spec).
pub fn library() -> Vec<Benchmark> {
    vec![Benchmark {
        name: "RVec",
        description: "refined vector API (Fig. 3 / Fig. 11)",
        flux_src: programs::RVEC_LIBRARY_FLUX,
        baseline_src: programs::RVEC_LIBRARY_BASELINE,
        is_library: true,
    }]
}

/// Looks up a benchmark by name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    benchmarks().into_iter().find(|b| b.name == name)
}

/// Which verifier a Table 1 cell refers to (mirrors `flux::Mode`, which
/// lives downstream of this crate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Refinement types + liquid inference.
    Flux,
    /// Program-logic contracts + loop invariants + quantifiers.
    Baseline,
}

/// The expected-outcome matrix of Table 1: whether the `(benchmark, mode)`
/// cell is expected to verify.
///
/// Since PR 2 every cell of the 8×2 matrix verifies, matching the paper's
/// headline claim.  Keeping the matrix explicit (instead of `|_| true`)
/// documents the contract per cell and gives future regressions a precise
/// place to show up: `tests/table1_matrix.rs` fails `cargo test` if any
/// cell's actual outcome drifts from this table.
pub fn expect_verifies(name: &str, mode: Mode) -> bool {
    let (flux, baseline) = match name {
        "bsearch" => (true, true),
        "dotprod" => (true, true),
        "fft" => (true, true),
        "heapsort" => (true, true),
        "simplex" => (true, true),
        "kmeans" => (true, true),
        "kmp" => (true, true),
        "wave" => (true, true),
        _ => (false, false),
    };
    match mode {
        Mode::Flux => flux,
        Mode::Baseline => baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_eight_table1_rows() {
        let names: Vec<&str> = benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec!["bsearch", "dotprod", "fft", "heapsort", "simplex", "kmeans", "kmp", "wave"]
        );
    }

    #[test]
    fn every_flux_flavour_parses() {
        for b in benchmarks() {
            let parsed = flux_syntax::parse_program(b.flux_src);
            assert!(
                parsed.is_ok(),
                "{} (flux) fails to parse: {:?}",
                b.name,
                parsed.err()
            );
        }
    }

    #[test]
    fn every_baseline_flavour_parses() {
        for b in benchmarks() {
            let parsed = flux_syntax::parse_program(b.baseline_src);
            assert!(
                parsed.is_ok(),
                "{} (baseline) fails to parse: {:?}",
                b.name,
                parsed.err()
            );
        }
    }

    #[test]
    fn flux_flavours_have_no_loop_invariant_annotations() {
        for b in benchmarks() {
            assert_eq!(
                b.flux_metrics().annot_lines,
                0,
                "{} flux flavour should not need invariant! lines",
                b.name
            );
        }
    }

    #[test]
    fn baseline_flavours_carry_annotations_on_loopy_benchmarks() {
        let total: usize = benchmarks()
            .iter()
            .map(|b| b.baseline_metrics().annot_lines)
            .sum();
        assert!(
            total > 10,
            "expected a substantial annotation burden, got {total}"
        );
    }

    #[test]
    fn baseline_specs_are_larger_than_flux_specs_overall() {
        let flux: usize = benchmarks()
            .iter()
            .chain(library().iter())
            .map(|b| b.flux_metrics().spec_lines)
            .sum();
        let baseline: usize = benchmarks()
            .iter()
            .chain(library().iter())
            .map(|b| b.baseline_metrics().spec_lines)
            .sum();
        assert!(
            baseline > flux,
            "baseline specs ({baseline}) should outweigh flux specs ({flux})"
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("kmp").is_some());
        assert!(benchmark("nope").is_none());
    }
}
