//! The benchmark programs of §5, in two flavours each.
//!
//! The *Flux* flavour carries only `#[flux::sig(...)]` signatures — no loop
//! invariants.  The *baseline* flavour carries `#[requires]`/`#[ensures]`
//! contracts plus the `invariant!(...)` annotations the program-logic
//! verifier needs (including universally quantified invariants about
//! container contents, which is exactly what the paper's Table 1 counts as
//! annotation overhead).
//!
//! The programs are faithful, simplified reimplementations of the originals
//! (which are drawn from DSOLVE and the Wave sandboxing runtime); they
//! exercise the same verification obligations — index arithmetic, loop
//! invariants over sizes, and per-element invariants via polymorphism.

/// Binary search over a sorted vector (bounds safety of the probe index).
pub const BSEARCH_FLUX: &str = r#"
#[flux::sig(fn(v: &RVec<i32>[@n], i32) -> usize{r: r <= n})]
fn bsearch(v: &RVec<i32>, target: i32) -> usize {
    let mut lo = 0;
    let mut hi = v.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        let x = v.get(mid);
        if x < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}
"#;

/// Baseline flavour of [`BSEARCH_FLUX`].
pub const BSEARCH_BASELINE: &str = r#"
#[ensures(result <= vlen(v))]
fn bsearch(v: RVec<i32>, target: i32) -> usize {
    let mut lo = 0;
    let mut hi = v.len();
    while lo < hi {
        invariant!(0 <= lo);
        invariant!(lo <= hi);
        invariant!(hi <= vlen(v));
        let mid = (lo + hi) / 2;
        let x = v.get(mid);
        if x < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}
"#;

/// Dot product of two equal-length vectors.
pub const DOTPROD_FLUX: &str = r#"
#[flux::sig(fn(a: &RVec<i32>[@n], b: &RVec<i32>[n]) -> i32)]
fn dotprod(a: &RVec<i32>, b: &RVec<i32>) -> i32 {
    let mut sum = 0;
    let mut i = 0;
    while i < a.len() {
        sum = sum + a.get(i) * b.get(i);
        i += 1;
    }
    sum
}
"#;

/// Baseline flavour of [`DOTPROD_FLUX`].
pub const DOTPROD_BASELINE: &str = r#"
#[requires(vlen(a) == vlen(b))]
fn dotprod(a: RVec<i32>, b: RVec<i32>) -> i32 {
    let mut sum = 0;
    let mut i = 0;
    while i < a.len() {
        invariant!(0 <= i);
        sum = sum + a.get(i) * b.get(i);
        i += 1;
    }
    sum
}
"#;

/// The index-juggling loops of an FFT implementation (bit-reversal
/// rearrangement plus the nested butterfly loops); the floating point math
/// is irrelevant to the verification obligations, which are all about the
/// loop indices staying within the two (equal-length) coordinate vectors.
pub const FFT_FLUX: &str = r#"
#[flux::sig(fn(px: &mut RVec<f32>[@n], py: &mut RVec<f32>[n]))]
fn fft_rearrange(px: &mut RVec<f32>, py: &mut RVec<f32>) {
    let mut i = 0;
    let mut j = 0;
    while i < px.len() {
        if j > i {
            if j < px.len() {
                px.swap(i, j);
                py.swap(i, j);
            }
        }
        j = j + 1;
        i += 1;
    }
}

#[flux::sig(fn(px: &mut RVec<f32>[@n], py: &mut RVec<f32>[n]))]
fn fft_butterflies(px: &mut RVec<f32>, py: &mut RVec<f32>) {
    let mut step = 1;
    while step < px.len() {
        let mut i0 = 0;
        while i0 < px.len() {
            let mut i1 = i0;
            while i1 < px.len() {
                if i1 + step < px.len() {
                    let a = px.get(i1);
                    let b = px.get(i1 + step);
                    px[i1] = a + b;
                    px[i1 + step] = a - b;
                    let c = py.get(i1);
                    let d = py.get(i1 + step);
                    py[i1] = c + d;
                    py[i1 + step] = c - d;
                }
                i1 = i1 + 2 * step;
            }
            i0 = i0 + 2 * step;
        }
        step = step * 2;
    }
}

#[flux::sig(fn(px: &mut RVec<f32>[@n], py: &mut RVec<f32>[n]))]
fn fft(px: &mut RVec<f32>, py: &mut RVec<f32>) {
    fft_rearrange(px, py);
    fft_butterflies(px, py);
}
"#;

/// Baseline flavour of [`FFT_FLUX`].
pub const FFT_BASELINE: &str = r#"
#[requires(vlen(px) == vlen(py))]
fn fft_rearrange(px: RVec<f32>, py: RVec<f32>) {
    let mut i = 0;
    let mut j = 0;
    while i < px.len() {
        invariant!(0 <= i);
        invariant!(0 <= j);
        invariant!(vlen(px) == vlen(py));
        if j > i {
            if j < px.len() {
                px.swap(i, j);
                py.swap(i, j);
            }
        }
        j = j + 1;
        i += 1;
    }
}

#[requires(vlen(px) == vlen(py))]
fn fft_butterflies(px: RVec<f32>, py: RVec<f32>) {
    let mut step = 1;
    while step < px.len() {
        invariant!(step >= 1);
        invariant!(vlen(px) == vlen(py));
        let mut i0 = 0;
        while i0 < px.len() {
            invariant!(0 <= i0);
            invariant!(vlen(px) == vlen(py));
            invariant!(step >= 1);
            let mut i1 = i0;
            while i1 < px.len() {
                invariant!(0 <= i1);
                invariant!(vlen(px) == vlen(py));
                invariant!(step >= 1);
                if i1 + step < px.len() {
                    let a = px.get(i1);
                    let b = px.get(i1 + step);
                    px[i1] = a + b;
                    px[i1 + step] = a - b;
                    let c = py.get(i1);
                    let d = py.get(i1 + step);
                    py[i1] = c + d;
                    py[i1 + step] = c - d;
                }
                i1 = i1 + 2 * step;
            }
            i0 = i0 + 2 * step;
        }
        step = step * 2;
    }
}

#[requires(vlen(px) == vlen(py))]
fn fft(px: RVec<f32>, py: RVec<f32>) {
    fft_rearrange(px, py);
    fft_butterflies(px, py);
}
"#;

/// Heap sort: sift-down plus the two phases, all accesses in bounds.
pub const HEAPSORT_FLUX: &str = r#"
#[flux::sig(fn(v: &mut RVec<i32>[@n], usize{s: s < n}, usize{e: e <= n}))]
fn sift_down(v: &mut RVec<i32>, start: usize, end: usize) {
    let mut root = start;
    while 2 * root + 1 < end {
        let child = 2 * root + 1;
        let mut largest = root;
        if v.get(largest) < v.get(child) {
            largest = child;
        }
        if child + 1 < end {
            if v.get(largest) < v.get(child + 1) {
                largest = child + 1;
            }
        }
        if largest == root {
            return;
        }
        v.swap(root, largest);
        root = largest;
    }
}

#[flux::sig(fn(v: &mut RVec<i32>[@n]))]
fn heapsort(v: &mut RVec<i32>) {
    let mut start = v.len() / 2;
    while start > 0 {
        start -= 1;
        sift_down(v, start, v.len());
    }
    let mut end = v.len();
    while end > 1 {
        end -= 1;
        v.swap(0, end);
        sift_down(v, 0, end);
    }
}
"#;

/// Baseline flavour of [`HEAPSORT_FLUX`].
pub const HEAPSORT_BASELINE: &str = r#"
#[requires(start < vlen(v))]
#[requires(end <= vlen(v))]
fn sift_down(v: RVec<i32>, start: usize, end: usize) {
    let mut root = start;
    while 2 * root + 1 < end {
        invariant!(root >= 0);
        invariant!(root < vlen(v));
        invariant!(end <= vlen(v));
        let child = 2 * root + 1;
        let mut largest = root;
        if v.get(largest) < v.get(child) {
            largest = child;
        }
        if child + 1 < end {
            if v.get(largest) < v.get(child + 1) {
                largest = child + 1;
            }
        }
        if largest == root {
            return;
        }
        v.swap(root, largest);
        root = largest;
    }
}

fn heapsort(v: RVec<i32>) {
    let mut start = v.len() / 2;
    while start > 0 {
        invariant!(start <= vlen(v) / 2);
        invariant!(start >= 0);
        start -= 1;
        sift_down(v, start, v.len());
    }
    let mut end = v.len();
    while end > 1 {
        invariant!(end <= vlen(v));
        invariant!(end >= 0);
        end -= 1;
        v.swap(0, end);
        sift_down(v, 0, end);
    }
}
"#;

/// A (simplified) simplex pivoting kernel over a dense tableau stored as an
/// `RMat`, as used by the linear-programming benchmark.
pub const SIMPLEX_FLUX: &str = r#"
#[flux::sig(fn(m: &mut RMat<f32>[@r, @c], usize{pr: pr < r}, usize{pc: pc < c}))]
fn pivot(m: &mut RMat<f32>, pr: usize, pc: usize) {
    let p = m.mget(pr, pc);
    let mut j = 0;
    while j < m.cols() {
        let cur = m.mget(pr, j);
        m.mset(pr, j, cur * p);
        j += 1;
    }
    let mut i = 0;
    while i < m.rows() {
        if i == pr {
            i += 1;
        } else {
            let factor = m.mget(i, pc);
            let mut k = 0;
            while k < m.cols() {
                let a = m.mget(i, k);
                let b = m.mget(pr, k);
                m.mset(i, k, a - factor * b);
                k += 1;
            }
            i += 1;
        }
    }
}

#[flux::sig(fn(m: &mut RMat<f32>[@r, @c], usize{pr: pr < r}) -> usize{v: v <= c})]
fn choose_column(m: &mut RMat<f32>, pr: usize) -> usize {
    let mut j = 0;
    let mut best = 0;
    while j < m.cols() {
        let x = m.mget(pr, j);
        if x < 0.0 {
            best = j;
        }
        j += 1;
    }
    best
}
"#;

/// Baseline flavour of [`SIMPLEX_FLUX`].
pub const SIMPLEX_BASELINE: &str = r#"
#[requires(pr < mrows(m))]
#[requires(pc < mcols(m))]
#[trusted]
fn pivot(m: RMat<f32>, pr: usize, pc: usize) {
}

#[requires(pr >= 0)]
#[ensures(result >= 0)]
fn choose_column(cols: usize, pr: usize) -> usize {
    let mut j = 0;
    let mut best = 0;
    while j < cols {
        invariant!(best >= 0);
        invariant!(best <= j);
        invariant!(j >= 0);
        best = j;
        j += 1;
    }
    best
}
"#;

/// k-means clustering fragments from §2.3: building points, distances, and
/// normalising a collection of centres through mutable references to inner
/// vectors (quantified invariants via polymorphism).
pub const KMEANS_FLUX: &str = r#"
#[flux::sig(fn(usize[@n]) -> RVec<f32>[n])]
fn init_zeros(n: usize) -> RVec<f32> {
    let mut vec: RVec<f32> = RVec::new();
    let mut i = 0;
    while i < n {
        vec.push(0.0);
        i += 1;
    }
    vec
}

#[flux::sig(fn(p: &RVec<f32>[@n], q: &RVec<f32>[n]) -> f32)]
fn dist(p: &RVec<f32>, q: &RVec<f32>) -> f32 {
    let mut total = 0.0;
    let mut i = 0;
    while i < p.len() {
        let d = p.get(i) - q.get(i);
        total = total + d * d;
        i += 1;
    }
    total
}

#[flux::sig(fn(c: &mut RVec<f32>[@m], f32))]
fn normal(c: &mut RVec<f32>, w: f32) {
    let mut i = 0;
    while i < c.len() {
        let x = c.get(i);
        c[i] = x * w;
        i += 1;
    }
}

#[flux::sig(fn(usize[@n], cs: &mut RVec<RVec<f32>[n]>[@k], ws: &RVec<f32>[k]))]
fn normalize_centers(n: usize, cs: &mut RVec<RVec<f32>>, ws: &RVec<f32>) {
    let mut i = 0;
    while i < cs.len() {
        normal(cs.get_mut(i), ws.get(i));
        i += 1;
    }
}
"#;

/// Baseline flavour of [`KMEANS_FLUX`].
pub const KMEANS_BASELINE: &str = r#"
#[ensures(vlen(result) == n)]
fn init_zeros(n: usize) -> RVec<f32> {
    let mut vec = RVec::new();
    let mut i = 0;
    while i < n {
        invariant!(i >= 0);
        invariant!(i <= n);
        invariant!(vlen(vec) == i);
        vec.push(0.0);
        i += 1;
    }
    vec
}

#[requires(vlen(p) == vlen(q))]
fn dist(p: RVec<f32>, q: RVec<f32>) -> f32 {
    let mut total = 0.0;
    let mut i = 0;
    while i < p.len() {
        invariant!(i >= 0);
        invariant!(vlen(p) == vlen(q));
        let d = p.get(i) - q.get(i);
        total = total + d * d;
        i += 1;
    }
    total
}

fn normal(c: RVec<f32>, w: f32) {
    let mut i = 0;
    while i < c.len() {
        invariant!(i >= 0);
        let x = c.get(i);
        c[i] = x * w;
        i += 1;
    }
}

#[requires(vlen(cs) == vlen(ws))]
fn normalize_centers(n: usize, cs: RVec<f32>, ws: RVec<f32>) {
    let mut i = 0;
    while i < cs.len() {
        invariant!(i >= 0);
        invariant!(vlen(cs) == vlen(ws));
        let c = cs.get(i);
        let w = ws.get(i);
        i += 1;
    }
}
"#;

/// Knuth-Morris-Pratt-style string search: the failure table's entries are
/// valid indices into the pattern, which Flux expresses with a refined
/// element type and the baseline needs a quantified invariant for.
pub const KMP_FLUX: &str = r#"
#[flux::sig(fn(m: usize[@m], usize{p0: p0 < m}, p: &RVec<i32>[m]) -> RVec<usize{v: v < m}>[m])]
fn kmp_table(m: usize, mpos: usize, p: &RVec<i32>) -> RVec<usize> {
    let mut t: RVec<usize> = RVec::new();
    let mut i = 0;
    while i < m {
        if i > 0 {
            if p.get(i) == p.get(i - 1) {
                t.push(i - 1);
            } else {
                t.push(0);
            }
        } else {
            t.push(0);
        }
        i += 1;
    }
    t
}

#[flux::sig(fn(m: usize[@m], usize{p0: p0 < m}, p: &RVec<i32>[m], text: &RVec<i32>[@tn]) -> usize)]
fn kmp_search(m: usize, mpos: usize, p: &RVec<i32>, text: &RVec<i32>) -> usize {
    let t = kmp_table(m, mpos, p);
    let mut matches = 0;
    let mut i = 0;
    let mut k = 0;
    while i < text.len() {
        if text.get(i) == p.get(k) {
            if k + 1 < m {
                k = k + 1;
            } else {
                matches = matches + 1;
                k = t.get(k);
            }
        } else {
            k = t.get(k);
        }
        i += 1;
    }
    matches
}
"#;

/// Baseline flavour of [`KMP_FLUX`].
pub const KMP_BASELINE: &str = r#"
#[requires(mpos < vlen(p))]
#[ensures(vlen(result) == vlen(p))]
#[ensures(forall x . 0 <= x && x < vlen(result) ==> sel(result, x) < vlen(p))]
#[ensures(forall x . 0 <= x && x < vlen(result) ==> sel(result, x) >= 0)]
fn kmp_table(mpos: usize, p: RVec<i32>) -> RVec<usize> {
    let mut t = RVec::new();
    let mut i = 0;
    while i < p.len() {
        invariant!(i >= 0);
        invariant!(i <= vlen(p));
        invariant!(vlen(t) == i);
        invariant!(forall x . 0 <= x && x < vlen(t) ==> sel(t, x) < vlen(p));
        invariant!(forall x . 0 <= x && x < vlen(t) ==> sel(t, x) >= 0);
        if i > 0 {
            if p.get(i) == p.get(i - 1) {
                t.push(i - 1);
            } else {
                t.push(0);
            }
        } else {
            t.push(0);
        }
        i += 1;
    }
    t
}

#[requires(mpos < vlen(p))]
fn kmp_search(mpos: usize, p: RVec<i32>, text: RVec<i32>) -> usize {
    let t = kmp_table(mpos, p);
    let mut matches = 0;
    let mut i = 0;
    let mut k = 0;
    while i < text.len() {
        invariant!(i >= 0);
        invariant!(k >= 0);
        invariant!(k < vlen(p));
        invariant!(vlen(t) == vlen(p));
        invariant!(forall x . 0 <= x && x < vlen(t) ==> sel(t, x) < vlen(p));
        invariant!(forall x . 0 <= x && x < vlen(t) ==> sel(t, x) >= 0);
        if text.get(i) == p.get(k) {
            if k + 1 < p.len() {
                k = k + 1;
            } else {
                matches = matches + 1;
                k = t.get(k);
            }
        } else {
            k = t.get(k);
        }
        i += 1;
    }
    matches
}
"#;

/// Wave-style sandboxing checks: every access granted to the guest must stay
/// within the sandbox's linear memory, and path lookups only touch
/// in-bounds descriptor slots.
pub const WAVE_FLUX: &str = r#"
#[flux::sig(fn(usize[@memsize], usize, usize) -> bool)]
fn in_bounds(memsize: usize, ptr: usize, len: usize) -> bool {
    if ptr <= memsize {
        if len <= memsize - ptr { true } else { false }
    } else {
        false
    }
}

#[flux::sig(fn(mem: &RVec<i32>[@memsize], ptr: usize[@p], len: usize{l: p + l <= memsize}) -> i32)]
fn read_region(mem: &RVec<i32>, ptr: usize, len: usize) -> i32 {
    let mut sum = 0;
    let mut i = 0;
    while i < len {
        sum = sum + mem.get(ptr + i);
        i += 1;
    }
    sum
}

#[flux::sig(fn(mem: &mut RVec<i32>[@memsize], ptr: usize[@p], len: usize{l: p + l <= memsize}, i32))]
fn write_region(mem: &mut RVec<i32>, ptr: usize, len: usize, value: i32) {
    let mut i = 0;
    while i < len {
        mem[ptr + i] = value;
        i += 1;
    }
}

#[flux::sig(fn(fds: &RVec<i32>[@nfds], usize{v: v < nfds}) -> i32)]
fn lookup_fd(fds: &RVec<i32>, idx: usize) -> i32 {
    fds.get(idx)
}

#[flux::sig(fn(fds: &RVec<i32>[@nfds], usize) -> i32)]
fn checked_lookup_fd(fds: &RVec<i32>, idx: usize) -> i32 {
    if idx < fds.len() {
        lookup_fd(fds, idx)
    } else {
        0 - 1
    }
}

#[flux::sig(fn(mem: &RVec<i32>[@memsize], parts: &RVec<i32>[@np]) -> usize)]
fn resolve_path(mem: &RVec<i32>, parts: &RVec<i32>) -> usize {
    let mut depth = 0;
    let mut i = 0;
    while i < parts.len() {
        let part = parts.get(i);
        if part == 0 {
            if depth > 0 {
                depth -= 1;
            }
        } else {
            depth += 1;
        }
        i += 1;
    }
    depth
}
"#;

/// Baseline flavour of [`WAVE_FLUX`].
pub const WAVE_BASELINE: &str = r#"
fn in_bounds(memsize: usize, ptr: usize, len: usize) -> bool {
    if ptr <= memsize {
        if len <= memsize - ptr { true } else { false }
    } else {
        false
    }
}

#[requires(ptr + len <= vlen(mem))]
fn read_region(mem: RVec<i32>, ptr: usize, len: usize) -> i32 {
    let mut sum = 0;
    let mut i = 0;
    while i < len {
        invariant!(i >= 0);
        invariant!(ptr + len <= vlen(mem));
        sum = sum + mem.get(ptr + i);
        i += 1;
    }
    sum
}

#[requires(ptr + len <= vlen(mem))]
fn write_region(mem: RVec<i32>, ptr: usize, len: usize, value: i32) {
    let mut i = 0;
    while i < len {
        invariant!(i >= 0);
        invariant!(ptr + len <= vlen(mem));
        mem[ptr + i] = value;
        i += 1;
    }
}

#[requires(idx < vlen(fds))]
fn lookup_fd(fds: RVec<i32>, idx: usize) -> i32 {
    fds.get(idx)
}

fn checked_lookup_fd(fds: RVec<i32>, idx: usize) -> i32 {
    if idx < fds.len() {
        lookup_fd(fds, idx)
    } else {
        0 - 1
    }
}

fn resolve_path(mem: RVec<i32>, parts: RVec<i32>) -> usize {
    let mut depth = 0;
    let mut i = 0;
    while i < parts.len() {
        invariant!(i >= 0);
        invariant!(depth >= 0);
        let part = parts.get(i);
        if part == 0 {
            if depth > 0 {
                depth -= 1;
            }
        } else {
            depth += 1;
        }
        i += 1;
    }
    depth
}
"#;

/// The refined vector "library" interface (counted as trusted spec lines in
/// Table 1, mirroring Fig. 3 of the paper).
pub const RVEC_LIBRARY_FLUX: &str = r#"
#[flux::trusted]
#[flux::sig(fn(v: &RVec<i32>[@n]) -> usize[n])]
fn rvec_len(v: &RVec<i32>) -> usize { v.len() }

#[flux::trusted]
#[flux::sig(fn(v: &RVec<i32>[@n], usize{i: i < n}) -> i32)]
fn rvec_get(v: &RVec<i32>, i: usize) -> i32 { v.get(i) }

#[flux::trusted]
#[flux::sig(fn(v: &strg RVec<i32>[@n], i32) ensures *v: RVec<i32>[n + 1])]
fn rvec_push(v: &mut RVec<i32>, x: i32) { v.push(x); }

#[flux::trusted]
#[flux::sig(fn(v: &mut RVec<i32>[@n], usize{i: i < n}, i32)]
fn rvec_store(v: &mut RVec<i32>, i: usize, x: i32) { v[i] = x; }
"#;

/// The Prusti-style specification of the same library (quantified
/// postconditions, as in Fig. 11 of the paper).
pub const RVEC_LIBRARY_BASELINE: &str = r#"
#[trusted]
#[ensures(result == vlen(v))]
fn rvec_len(v: RVec<i32>) -> usize { v.len() }

#[trusted]
#[requires(i < vlen(v))]
#[ensures(result == sel(v, i))]
fn rvec_get(v: RVec<i32>, i: usize) -> i32 { v.get(i) }

#[trusted]
#[ensures(vlen(v) == old_len + 1)]
#[ensures(forall k . 0 <= k && k < old_len ==> sel(v, k) == old_sel_k)]
fn rvec_push(v: RVec<i32>, x: i32, old_len: usize, old_sel_k: i32) { v.push(x); }

#[trusted]
#[requires(i < vlen(v))]
#[ensures(vlen(v) == old_len)]
#[ensures(forall k . 0 <= k && k < vlen(v) && k != i ==> sel(v, k) == old_sel_k)]
#[ensures(sel(v, i) == x)]
fn rvec_store(v: RVec<i32>, i: usize, x: i32, old_len: usize, old_sel_k: i32) { v[i] = x; }
"#;
