//! Source locations and diagnostics.

use std::fmt;

/// A byte range in a source file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span from byte offsets.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// A zero-width placeholder span.
    pub fn dummy() -> Span {
        Span { start: 0, end: 0 }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Computes the 1-based line and column of the span start in `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, c) in source.char_indices() {
            if i >= self.start {
                break;
            }
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// Severity of a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// A hard error.
    Error,
    /// A warning.
    Warning,
}

/// A diagnostic message attached to a source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// How severe the problem is.
    pub severity: Severity,
    /// The message text.
    pub message: String,
    /// Where the problem is.
    pub span: Span,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }

    /// Renders the diagnostic against its source text, quoting the offending
    /// line.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        let line_text = source.lines().nth(line - 1).unwrap_or("");
        let kind = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        format!(
            "{kind}: {}\n  --> line {line}, column {col}\n   | {line_text}\n",
            self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}",
            match self.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            },
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_union() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
    }

    #[test]
    fn line_and_column_are_one_based() {
        let src = "fn main() {\n    let x = 1;\n}\n";
        let span = Span::new(src.find("let").unwrap(), src.find("let").unwrap() + 3);
        assert_eq!(span.line_col(src), (2, 5));
    }

    #[test]
    fn diagnostics_render_the_offending_line() {
        let src = "fn f() {\n    boom();\n}\n";
        let start = src.find("boom").unwrap();
        let d = Diagnostic::error("unknown function `boom`", Span::new(start, start + 4));
        let rendered = d.render(src);
        assert!(rendered.contains("unknown function"));
        assert!(rendered.contains("boom();"));
        assert!(rendered.contains("line 2"));
    }

    #[test]
    fn display_prefixes_severity() {
        let d = Diagnostic::warning("shadowed binding", Span::dummy());
        assert_eq!(d.to_string(), "warning: shadowed binding");
    }
}
