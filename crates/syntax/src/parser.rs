//! A recursive-descent parser for the surface language.

use crate::ast::*;
use crate::lexer::{lex, Tok, Token};
use crate::span::{Diagnostic, Span};
use flux_logic::{Expr as Pred, Name, Sort};

/// Parses a complete source file.
pub fn parse_program(source: &str) -> Result<Program, Diagnostic> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.program()
}

/// Parses a refinement predicate in isolation (used by tests and by tools
/// that accept predicates on the command line).
pub fn parse_pred(source: &str) -> Result<Pred, Diagnostic> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let pred = parser.pred()?;
    parser.expect(Tok::Eof)?;
    Ok(pred)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_at(&self, offset: usize) -> &Tok {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<Token, Diagnostic> {
        if self.peek() == &tok {
            Ok(self.bump())
        } else {
            Err(Diagnostic::error(
                format!("expected {tok}, found {}", self.peek()),
                self.span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), Diagnostic> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                let span = self.span();
                self.bump();
                Ok((name, span))
            }
            other => Err(Diagnostic::error(
                format!("expected identifier, found {other}"),
                self.span(),
            )),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn check_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<Span, Diagnostic> {
        if self.check_keyword(kw) {
            let span = self.span();
            self.bump();
            Ok(span)
        } else {
            Err(Diagnostic::error(
                format!("expected `{kw}`, found {}", self.peek()),
                self.span(),
            ))
        }
    }

    // -----------------------------------------------------------------
    // Items
    // -----------------------------------------------------------------

    fn program(&mut self) -> Result<Program, Diagnostic> {
        let mut functions = Vec::new();
        while self.peek() != &Tok::Eof {
            functions.push(self.function()?);
        }
        Ok(Program { functions })
    }

    fn function(&mut self) -> Result<FnDef, Diagnostic> {
        let start = self.span();
        let mut flux_sig = None;
        let mut requires = Vec::new();
        let mut ensures = Vec::new();
        let mut trusted = false;

        while self.peek() == &Tok::Hash {
            self.bump();
            self.expect(Tok::LBracket)?;
            let (head, head_span) = self.expect_ident()?;
            match head.as_str() {
                "flux" => {
                    self.expect(Tok::ColonColon)?;
                    let (which, which_span) = self.expect_ident()?;
                    match which.as_str() {
                        "sig" => {
                            self.expect(Tok::LParen)?;
                            let sig = self.flux_sig(head_span)?;
                            self.expect(Tok::RParen)?;
                            flux_sig = Some(sig);
                        }
                        "trusted" => trusted = true,
                        other => {
                            return Err(Diagnostic::error(
                                format!("unknown flux attribute `{other}`"),
                                which_span,
                            ))
                        }
                    }
                }
                "requires" => {
                    self.expect(Tok::LParen)?;
                    requires.push(self.pred()?);
                    self.expect(Tok::RParen)?;
                }
                "ensures" => {
                    self.expect(Tok::LParen)?;
                    ensures.push(self.pred()?);
                    self.expect(Tok::RParen)?;
                }
                "trusted" => trusted = true,
                other => {
                    return Err(Diagnostic::error(
                        format!("unknown attribute `{other}`"),
                        head_span,
                    ))
                }
            }
            self.expect(Tok::RBracket)?;
        }

        self.expect_keyword("fn")?;
        let (name, _) = self.expect_ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        while self.peek() != &Tok::RParen {
            let pstart = self.span();
            let mutable = self.eat_keyword("mut");
            let (pname, _) = self.expect_ident()?;
            self.expect(Tok::Colon)?;
            let ty = self.rust_ty()?;
            params.push(Param {
                name: pname,
                ty,
                mutable,
                span: pstart.to(self.prev_span()),
            });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        let ret = if self.eat(&Tok::Arrow) {
            self.rust_ty()?
        } else {
            RustTy::Unit
        };
        let body = self.block()?;
        Ok(FnDef {
            name,
            params,
            ret,
            body,
            flux_sig,
            requires,
            ensures,
            trusted,
            span: start.to(self.prev_span()),
        })
    }

    fn rust_ty(&mut self) -> Result<RustTy, Diagnostic> {
        if self.eat(&Tok::Amp) {
            let mutability = if self.eat_keyword("mut") {
                Mutability::Mutable
            } else {
                Mutability::Shared
            };
            let inner = self.rust_ty()?;
            return Ok(RustTy::Ref(mutability, Box::new(inner)));
        }
        if self.eat(&Tok::LParen) {
            self.expect(Tok::RParen)?;
            return Ok(RustTy::Unit);
        }
        let (name, span) = self.expect_ident()?;
        match name.as_str() {
            "i8" | "i16" | "i32" | "i64" | "i128" | "isize" => Ok(RustTy::Int),
            "u8" | "u16" | "u32" | "u64" | "u128" | "usize" => Ok(RustTy::Uint),
            "bool" => Ok(RustTy::Bool),
            "f32" | "f64" => Ok(RustTy::Float),
            "RVec" => {
                self.expect(Tok::Lt)?;
                let inner = self.rust_ty()?;
                self.expect(Tok::Gt)?;
                Ok(RustTy::RVec(Box::new(inner)))
            }
            "RMat" => {
                self.expect(Tok::Lt)?;
                let inner = self.rust_ty()?;
                self.expect(Tok::Gt)?;
                Ok(RustTy::RMat(Box::new(inner)))
            }
            other => Err(Diagnostic::error(format!("unknown type `{other}`"), span)),
        }
    }

    // -----------------------------------------------------------------
    // Statements and expressions
    // -----------------------------------------------------------------

    fn block(&mut self) -> Result<Block, Diagnostic> {
        let start = self.span();
        self.expect(Tok::LBrace)?;
        self.block_rest(start)
    }

    /// Parses the remainder of a block, the opening brace having been
    /// consumed already.
    fn block_rest(&mut self, start: Span) -> Result<Block, Diagnostic> {
        let mut stmts = Vec::new();
        let mut tail = None;
        while self.peek() != &Tok::RBrace {
            if self.peek() == &Tok::Eof {
                return Err(Diagnostic::error("unterminated block", start));
            }
            match self.stmt_or_tail()? {
                StmtOrTail::Stmt(stmt) => stmts.push(stmt),
                StmtOrTail::Tail(expr) => {
                    tail = Some(Box::new(expr));
                    break;
                }
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(Block {
            stmts,
            tail,
            span: start.to(self.prev_span()),
        })
    }

    fn stmt_or_tail(&mut self) -> Result<StmtOrTail, Diagnostic> {
        let start = self.span();
        // let
        if self.check_keyword("let") {
            self.bump();
            let mutable = self.eat_keyword("mut");
            let (name, _) = self.expect_ident()?;
            let ty = if self.eat(&Tok::Colon) {
                Some(self.rust_ty()?)
            } else {
                None
            };
            self.expect(Tok::Eq)?;
            let init = self.expr()?;
            self.expect(Tok::Semi)?;
            return Ok(StmtOrTail::Stmt(Stmt::Let {
                name,
                mutable,
                ty,
                init,
                span: start.to(self.prev_span()),
            }));
        }
        // while
        if self.check_keyword("while") {
            self.bump();
            let cond = self.expr()?;
            self.expect(Tok::LBrace)?;
            // Leading invariant!(...) annotations (baseline only).
            let mut invariants = Vec::new();
            while self.check_keyword("invariant") && self.peek_at(1) == &Tok::Bang {
                self.bump(); // invariant
                self.bump(); // !
                self.expect(Tok::LParen)?;
                invariants.push(self.pred()?);
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
            }
            let body = self.block_rest(start)?;
            return Ok(StmtOrTail::Stmt(Stmt::While {
                cond,
                invariants,
                body,
                span: start.to(self.prev_span()),
            }));
        }
        // return
        if self.check_keyword("return") {
            self.bump();
            let value = if self.peek() == &Tok::Semi {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(Tok::Semi)?;
            return Ok(StmtOrTail::Stmt(Stmt::Return {
                value,
                span: start.to(self.prev_span()),
            }));
        }
        // assert!(expr);
        if self.check_keyword("assert") && self.peek_at(1) == &Tok::Bang {
            self.bump();
            self.bump();
            self.expect(Tok::LParen)?;
            let cond = self.expr()?;
            self.expect(Tok::RParen)?;
            self.expect(Tok::Semi)?;
            return Ok(StmtOrTail::Stmt(Stmt::Assert {
                cond,
                span: start.to(self.prev_span()),
            }));
        }
        // Expression, assignment, or tail expression.
        let expr = self.expr()?;
        let assign_op = match self.peek() {
            Tok::Eq => Some(AssignOp::Assign),
            Tok::PlusEq => Some(AssignOp::AddAssign),
            Tok::MinusEq => Some(AssignOp::SubAssign),
            Tok::StarEq => Some(AssignOp::MulAssign),
            Tok::SlashEq => Some(AssignOp::DivAssign),
            _ => None,
        };
        if let Some(op) = assign_op {
            self.bump();
            let value = self.expr()?;
            self.expect(Tok::Semi)?;
            return Ok(StmtOrTail::Stmt(Stmt::Assign {
                place: expr,
                op,
                value,
                span: start.to(self.prev_span()),
            }));
        }
        if self.eat(&Tok::Semi) {
            return Ok(StmtOrTail::Stmt(Stmt::Expr {
                expr,
                span: start.to(self.prev_span()),
            }));
        }
        // Statement-position `if` without a trailing semicolon that is not
        // the last expression of the block.
        if matches!(expr, Expr::If { .. }) && self.peek() != &Tok::RBrace {
            return Ok(StmtOrTail::Stmt(Stmt::Expr {
                expr,
                span: start.to(self.prev_span()),
            }));
        }
        Ok(StmtOrTail::Tail(expr))
    }

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::PipePipe {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary(BinOpKind::Or, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &Tok::AmpAmp {
            self.bump();
            let rhs = self.cmp_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary(BinOpKind::And, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, Diagnostic> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq => Some(BinOpKind::Eq),
            Tok::NotEq => Some(BinOpKind::Ne),
            Tok::Lt => Some(BinOpKind::Lt),
            Tok::Le => Some(BinOpKind::Le),
            Tok::Gt => Some(BinOpKind::Gt),
            Tok::Ge => Some(BinOpKind::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            let span = lhs.span().to(rhs.span());
            return Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs), span));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOpKind::Add,
                Tok::Minus => BinOpKind::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOpKind::Mul,
                Tok::Slash => BinOpKind::Div,
                Tok::Percent => BinOpKind::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, Diagnostic> {
        let start = self.span();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let inner = self.unary_expr()?;
                let span = start.to(inner.span());
                Ok(Expr::Unary(UnOpKind::Neg, Box::new(inner), span))
            }
            Tok::Bang => {
                self.bump();
                let inner = self.unary_expr()?;
                let span = start.to(inner.span());
                Ok(Expr::Unary(UnOpKind::Not, Box::new(inner), span))
            }
            Tok::Star => {
                self.bump();
                let inner = self.unary_expr()?;
                let span = start.to(inner.span());
                Ok(Expr::Deref(Box::new(inner), span))
            }
            Tok::Amp => {
                self.bump();
                let mutability = if self.eat_keyword("mut") {
                    Mutability::Mutable
                } else {
                    Mutability::Shared
                };
                let inner = self.unary_expr()?;
                let span = start.to(inner.span());
                Ok(Expr::Borrow {
                    mutability,
                    place: Box::new(inner),
                    span,
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut expr = self.primary_expr()?;
        loop {
            match self.peek() {
                Tok::Dot => {
                    self.bump();
                    let (method, _) = self.expect_ident()?;
                    self.expect(Tok::LParen)?;
                    let args = self.call_args()?;
                    self.expect(Tok::RParen)?;
                    let span = expr.span().to(self.prev_span());
                    expr = Expr::MethodCall {
                        recv: Box::new(expr),
                        method,
                        args,
                        span,
                    };
                }
                Tok::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    let span = expr.span().to(self.prev_span());
                    expr = Expr::Index {
                        recv: Box::new(expr),
                        index: Box::new(index),
                        span,
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, Diagnostic> {
        let mut args = Vec::new();
        while self.peek() != &Tok::RParen {
            args.push(self.expr()?);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(args)
    }

    fn primary_expr(&mut self) -> Result<Expr, Diagnostic> {
        let start = self.span();
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Expr::Int(i, start))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(Expr::Float(x, start))
            }
            Tok::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            Tok::Ident(name) => {
                match name.as_str() {
                    "true" => {
                        self.bump();
                        return Ok(Expr::Bool(true, start));
                    }
                    "false" => {
                        self.bump();
                        return Ok(Expr::Bool(false, start));
                    }
                    "if" => {
                        return self.if_expr();
                    }
                    _ => {}
                }
                self.bump();
                // Path like RVec::new
                let mut path = name;
                while self.peek() == &Tok::ColonColon {
                    self.bump();
                    let (segment, _) = self.expect_ident()?;
                    path.push_str("::");
                    path.push_str(&segment);
                }
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let args = self.call_args()?;
                    self.expect(Tok::RParen)?;
                    let span = start.to(self.prev_span());
                    return Ok(Expr::Call {
                        func: path,
                        args,
                        span,
                    });
                }
                Ok(Expr::Var(path, start))
            }
            other => Err(Diagnostic::error(
                format!("expected expression, found {other}"),
                start,
            )),
        }
    }

    fn if_expr(&mut self) -> Result<Expr, Diagnostic> {
        let start = self.expect_keyword("if")?;
        let cond = self.expr()?;
        let then = self.block()?;
        let els = if self.check_keyword("else") {
            self.bump();
            if self.check_keyword("if") {
                let nested = self.if_expr()?;
                let span = nested.span();
                Some(Block {
                    stmts: vec![],
                    tail: Some(Box::new(nested)),
                    span,
                })
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        let span = start.to(self.prev_span());
        Ok(Expr::If {
            cond: Box::new(cond),
            then,
            els,
            span,
        })
    }

    // -----------------------------------------------------------------
    // Flux signatures
    // -----------------------------------------------------------------

    fn flux_sig(&mut self, start: Span) -> Result<FluxSig, Diagnostic> {
        self.expect_keyword("fn")?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        while self.peek() != &Tok::RParen {
            // Optional `name:` prefix.
            let name = if matches!(self.peek(), Tok::Ident(_)) && self.peek_at(1) == &Tok::Colon {
                let (n, _) = self.expect_ident()?;
                self.expect(Tok::Colon)?;
                Some(n)
            } else {
                None
            };
            let ty = self.rty_annot()?;
            params.push(SigParam { name, ty });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        let ret = if self.eat(&Tok::Arrow) {
            Some(self.rty_annot()?)
        } else {
            None
        };
        let mut ensures = Vec::new();
        if self.eat_keyword("ensures") {
            loop {
                self.expect(Tok::Star)?;
                let (param, _) = self.expect_ident()?;
                self.expect(Tok::Colon)?;
                let ty = self.rty_annot()?;
                ensures.push(EnsuresClause { param, ty });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        Ok(FluxSig {
            params,
            ret,
            ensures,
            span: start.to(self.prev_span()),
        })
    }

    fn rty_annot(&mut self) -> Result<RTyAnnot, Diagnostic> {
        if self.eat(&Tok::Amp) {
            let kind = if self.eat_keyword("mut") {
                RefKind::Mut
            } else if self.eat_keyword("strg") {
                RefKind::Strg
            } else {
                // `shr` is optional: a bare `&` is also a shared reference.
                self.eat_keyword("shr");
                RefKind::Shared
            };
            let inner = self.rty_annot()?;
            return Ok(RTyAnnot::Ref {
                kind,
                inner: Box::new(inner),
            });
        }
        let (base, _) = self.expect_ident()?;
        // Generic arguments.
        let mut args = Vec::new();
        if matches!(base.as_str(), "RVec" | "RMat") && self.eat(&Tok::Lt) {
            loop {
                args.push(self.rty_annot()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::Gt)?;
        }
        // Refinement.
        let refinement = if self.eat(&Tok::LBracket) {
            let mut indices = Vec::new();
            while self.peek() != &Tok::RBracket {
                if self.eat(&Tok::At) {
                    let (name, _) = self.expect_ident()?;
                    indices.push(IndexArg::Bind(name));
                } else {
                    indices.push(IndexArg::Expr(self.pred()?));
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RBracket)?;
            Some(RefinementAnnot::Indices(indices))
        } else if self.eat(&Tok::LBrace) {
            let (binder, _) = self.expect_ident()?;
            self.expect(Tok::Colon)?;
            let pred = self.pred()?;
            self.expect(Tok::RBrace)?;
            Some(RefinementAnnot::Exists { binder, pred })
        } else {
            None
        };
        Ok(RTyAnnot::Base {
            base,
            args,
            refinement,
        })
    }

    // -----------------------------------------------------------------
    // Refinement predicates
    // -----------------------------------------------------------------

    fn pred(&mut self) -> Result<Pred, Diagnostic> {
        self.pred_imp()
    }

    fn pred_imp(&mut self) -> Result<Pred, Diagnostic> {
        let lhs = self.pred_or()?;
        if self.peek() == &Tok::FatArrow || self.peek() == &Tok::LongArrow {
            self.bump();
            let rhs = self.pred_imp()?;
            return Ok(Pred::imp(lhs, rhs));
        }
        Ok(lhs)
    }

    fn pred_or(&mut self) -> Result<Pred, Diagnostic> {
        let mut lhs = self.pred_and()?;
        while self.peek() == &Tok::PipePipe {
            self.bump();
            let rhs = self.pred_and()?;
            lhs = Pred::or(lhs, rhs);
        }
        Ok(lhs)
    }

    fn pred_and(&mut self) -> Result<Pred, Diagnostic> {
        let mut lhs = self.pred_cmp()?;
        while self.peek() == &Tok::AmpAmp {
            self.bump();
            let rhs = self.pred_cmp()?;
            lhs = Pred::and(lhs, rhs);
        }
        Ok(lhs)
    }

    fn pred_cmp(&mut self) -> Result<Pred, Diagnostic> {
        let lhs = self.pred_add()?;
        let op = match self.peek() {
            Tok::EqEq | Tok::Eq => Some(flux_logic::BinOp::Eq),
            Tok::NotEq => Some(flux_logic::BinOp::Ne),
            Tok::Lt => Some(flux_logic::BinOp::Lt),
            Tok::Le => Some(flux_logic::BinOp::Le),
            Tok::Gt => Some(flux_logic::BinOp::Gt),
            Tok::Ge => Some(flux_logic::BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.pred_add()?;
            return Ok(Pred::binop(op, lhs, rhs));
        }
        Ok(lhs)
    }

    fn pred_add(&mut self) -> Result<Pred, Diagnostic> {
        let mut lhs = self.pred_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => flux_logic::BinOp::Add,
                Tok::Minus => flux_logic::BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.pred_mul()?;
            lhs = Pred::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn pred_mul(&mut self) -> Result<Pred, Diagnostic> {
        let mut lhs = self.pred_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => flux_logic::BinOp::Mul,
                Tok::Slash => flux_logic::BinOp::Div,
                Tok::Percent => flux_logic::BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.pred_unary()?;
            lhs = Pred::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn pred_unary(&mut self) -> Result<Pred, Diagnostic> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Pred::neg(self.pred_unary()?))
            }
            Tok::Bang => {
                self.bump();
                Ok(Pred::not(self.pred_unary()?))
            }
            _ => self.pred_primary(),
        }
    }

    fn pred_primary(&mut self) -> Result<Pred, Diagnostic> {
        let start = self.span();
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Pred::int(i))
            }
            Tok::LParen => {
                self.bump();
                let inner = self.pred()?;
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            Tok::Ident(name) => {
                match name.as_str() {
                    "true" => {
                        self.bump();
                        return Ok(Pred::tt());
                    }
                    "false" => {
                        self.bump();
                        return Ok(Pred::ff());
                    }
                    "forall" | "exists" => {
                        self.bump();
                        let mut binders = Vec::new();
                        loop {
                            let (binder, _) = self.expect_ident()?;
                            binders.push((Name::intern(&binder), Sort::Int));
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(Tok::Dot)?;
                        let body = self.pred()?;
                        return Ok(if name == "forall" {
                            Pred::forall(binders, body)
                        } else {
                            Pred::exists(binders, body)
                        });
                    }
                    _ => {}
                }
                self.bump();
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    while self.peek() != &Tok::RParen {
                        args.push(self.pred()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RParen)?;
                    return Ok(Pred::app(Name::intern(&name), args));
                }
                Ok(Pred::var(Name::intern(&name)))
            }
            other => Err(Diagnostic::error(
                format!("expected refinement expression, found {other}"),
                start,
            )),
        }
    }
}

enum StmtOrTail {
    Stmt(Stmt),
    Tail(Expr),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_is_pos_from_the_paper() {
        let src = r#"
            #[flux::sig(fn(i32[@n]) -> bool[n > 0])]
            fn is_pos(n: i32) -> bool {
                if n > 0 { true } else { false }
            }
        "#;
        let program = parse_program(src).unwrap();
        assert_eq!(program.functions.len(), 1);
        let f = &program.functions[0];
        assert_eq!(f.name, "is_pos");
        let sig = f.flux_sig.as_ref().unwrap();
        assert_eq!(sig.params.len(), 1);
        assert!(sig.ret.is_some());
        assert!(matches!(f.body.tail.as_deref(), Some(Expr::If { .. })));
    }

    #[test]
    fn parses_abs_with_existential_return() {
        let src = r#"
            #[flux::sig(fn(i32[@x]) -> i32{v: v >= x && v >= 0})]
            fn abs(x: i32) -> i32 {
                if x < 0 { -x } else { x }
            }
        "#;
        let program = parse_program(src).unwrap();
        let sig = program.functions[0].flux_sig.as_ref().unwrap();
        match sig.ret.as_ref().unwrap() {
            RTyAnnot::Base {
                refinement: Some(RefinementAnnot::Exists { binder, .. }),
                ..
            } => {
                assert_eq!(binder, "v");
            }
            other => panic!("expected existential return, got {other:?}"),
        }
    }

    #[test]
    fn parses_strong_reference_signature_with_ensures() {
        let src = r#"
            #[flux::sig(fn(x: &strg i32[@n]) ensures *x: i32[n + 1])]
            fn incr(x: &mut i32) {
                *x += 1;
            }
        "#;
        let program = parse_program(src).unwrap();
        let f = &program.functions[0];
        let sig = f.flux_sig.as_ref().unwrap();
        assert_eq!(sig.ensures.len(), 1);
        assert_eq!(sig.ensures[0].param, "x");
        match &sig.params[0].ty {
            RTyAnnot::Ref {
                kind: RefKind::Strg,
                ..
            } => {}
            other => panic!("expected strong reference, got {other:?}"),
        }
        // The body is `*x += 1;`
        assert!(matches!(
            &f.body.stmts[0],
            Stmt::Assign {
                op: AssignOp::AddAssign,
                place: Expr::Deref(..),
                ..
            }
        ));
    }

    #[test]
    fn parses_while_loop_with_method_calls() {
        let src = r#"
            #[flux::sig(fn(usize[@n]) -> RVec<f32>[n])]
            fn init_zeros(n: usize) -> RVec<f32> {
                let mut vec = RVec::new();
                let mut i = 0;
                while i < n {
                    vec.push(0.0);
                    i += 1;
                }
                vec
            }
        "#;
        let program = parse_program(src).unwrap();
        let f = &program.functions[0];
        assert_eq!(f.body.stmts.len(), 3);
        match &f.body.stmts[2] {
            Stmt::While {
                cond,
                body,
                invariants,
                ..
            } => {
                assert!(invariants.is_empty());
                assert!(matches!(cond, Expr::Binary(BinOpKind::Lt, ..)));
                assert_eq!(body.stmts.len(), 2);
            }
            other => panic!("expected while, got {other:?}"),
        }
        assert!(matches!(f.body.tail.as_deref(), Some(Expr::Var(name, _)) if name == "vec"));
    }

    #[test]
    fn parses_baseline_annotations() {
        let src = r#"
            #[requires(n > 0)]
            #[ensures(result >= 0)]
            fn sum_upto(n: usize) -> usize {
                let mut i = 0;
                let mut total = 0;
                while i < n {
                    invariant!(i <= n);
                    invariant!(total >= 0);
                    total = total + i;
                    i += 1;
                }
                total
            }
        "#;
        let program = parse_program(src).unwrap();
        let f = &program.functions[0];
        assert_eq!(f.requires.len(), 1);
        assert_eq!(f.ensures.len(), 1);
        match &f.body.stmts[2] {
            Stmt::While {
                invariants, body, ..
            } => {
                assert_eq!(invariants.len(), 2);
                assert_eq!(body.stmts.len(), 2);
            }
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn parses_nested_generics_in_signatures() {
        let src = r#"
            #[flux::sig(fn(usize[@n], cs: &mut RVec<RVec<f32>[n]>[@k], ws: &RVec<usize>[k]))]
            fn normalize_centers(n: usize, cs: &mut RVec<RVec<f32>>, ws: &RVec<usize>) {
                let mut i = 0;
                while i < cs.len() {
                    normal(cs.get_mut(i), ws.get(i));
                    i += 1;
                }
            }
        "#;
        let program = parse_program(src).unwrap();
        let sig = program.functions[0].flux_sig.as_ref().unwrap();
        assert_eq!(sig.params.len(), 3);
        match &sig.params[1].ty {
            RTyAnnot::Ref {
                kind: RefKind::Mut,
                inner,
            } => match inner.as_ref() {
                RTyAnnot::Base { base, args, .. } => {
                    assert_eq!(base, "RVec");
                    assert_eq!(args.len(), 1);
                }
                other => panic!("expected base, got {other:?}"),
            },
            other => panic!("expected mutable reference, got {other:?}"),
        }
    }

    #[test]
    fn parses_indexing_sugar_and_assignment() {
        let src = r#"
            fn set_zero(v: &mut RVec<i32>, i: usize) {
                v[i] = 0;
                let x = v[i];
                assert!(x == 0);
            }
        "#;
        let program = parse_program(src).unwrap();
        let f = &program.functions[0];
        assert!(matches!(
            &f.body.stmts[0],
            Stmt::Assign {
                place: Expr::Index { .. },
                ..
            }
        ));
        assert!(matches!(&f.body.stmts[2], Stmt::Assert { .. }));
    }

    #[test]
    fn parses_else_if_chains() {
        let src = r#"
            fn sign(x: i32) -> i32 {
                if x > 0 { 1 } else if x < 0 { -1 } else { 0 }
            }
        "#;
        let program = parse_program(src).unwrap();
        match program.functions[0].body.tail.as_deref() {
            Some(Expr::If { els: Some(els), .. }) => {
                assert!(matches!(els.tail.as_deref(), Some(Expr::If { .. })));
            }
            other => panic!("expected if/else-if, got {other:?}"),
        }
    }

    #[test]
    fn parse_error_reports_position() {
        let src = "fn broken( { }";
        let err = parse_program(src).unwrap_err();
        assert!(err.message.contains("expected"));
    }

    #[test]
    fn parses_quantified_spec_predicates() {
        let pred = parse_pred("forall k . 0 <= k && k < vlen(t) ==> sel(t, k) < i").unwrap();
        assert!(pred.has_quantifier());
        let printed = format!("{pred}");
        assert!(printed.contains("sel(t, k)"));
    }

    #[test]
    fn parses_trusted_attribute() {
        let src = r#"
            #[flux::trusted]
            fn magic() -> i32 { 0 }
        "#;
        let program = parse_program(src).unwrap();
        assert!(program.functions[0].trusted);
    }

    #[test]
    fn return_statements_and_unit_functions() {
        let src = r#"
            fn clamp(x: i32, lo: i32, hi: i32) -> i32 {
                if x < lo {
                    return lo;
                }
                if x > hi {
                    return hi;
                }
                x
            }
        "#;
        let program = parse_program(src).unwrap();
        let f = &program.functions[0];
        assert_eq!(f.body.stmts.len(), 2);
        assert!(f.body.tail.is_some());
    }

    #[test]
    fn call_and_path_expressions() {
        let src = r#"
            fn caller(n: usize) -> usize {
                let v = RVec::new();
                let m = helper(n, 2);
                m
            }
        "#;
        let program = parse_program(src).unwrap();
        let f = &program.functions[0];
        match &f.body.stmts[0] {
            Stmt::Let {
                init: Expr::Call { func, .. },
                ..
            } => assert_eq!(func, "RVec::new"),
            other => panic!("expected call, got {other:?}"),
        }
        match &f.body.stmts[1] {
            Stmt::Let {
                init: Expr::Call { func, args, .. },
                ..
            } => {
                assert_eq!(func, "helper");
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected call, got {other:?}"),
        }
    }
}
