//! Surface syntax for the Flux reproduction.
//!
//! The real Flux is a plug-in to the Rust compiler and therefore parses
//! nothing itself — it reads rustc's MIR plus `#[flux::sig(...)]`
//! attributes.  This reproduction cannot link against rustc, so this crate
//! provides the substitute front end: a lexer and parser for a Rust-subset
//! surface language that covers everything the paper's benchmark suite
//! needs (functions, `let`/`while`/`if`, references, the refined `RVec` /
//! `RMat` containers) together with
//!
//! * `#[flux::sig(...)]` refined signatures (indexed types, existential
//!   types, refinement parameters, `&strg` references and `ensures`
//!   clauses), and
//! * the program-logic baseline's annotations: `#[requires(...)]`,
//!   `#[ensures(...)]` and `invariant!(...)`.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     #[flux::sig(fn(i32[@n]) -> bool[n > 0])]
//!     fn is_pos(n: i32) -> bool {
//!         if n > 0 { true } else { false }
//!     }
//! "#;
//! let program = flux_syntax::parse_program(src).unwrap();
//! assert_eq!(program.functions[0].name, "is_pos");
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod span;

pub use ast::Program;
pub use parser::{parse_pred, parse_program};
pub use span::{Diagnostic, Severity, Span};

/// Counts the source metrics the evaluation reports (Table 1): lines of
/// code, specification lines and loop-invariant annotation lines.
///
/// * LOC counts non-blank, non-comment, non-annotation lines.
/// * Spec lines are attribute lines (`#[flux::sig(...)]`, `#[requires]`,
///   `#[ensures]`).
/// * Annotation lines are `invariant!(...)` lines inside loop bodies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SourceMetrics {
    /// Lines of executable code.
    pub loc: usize,
    /// Lines of function specification.
    pub spec_lines: usize,
    /// Lines of loop-invariant annotation.
    pub annot_lines: usize,
}

impl SourceMetrics {
    /// Computes metrics for a source file.
    pub fn of_source(source: &str) -> SourceMetrics {
        let mut metrics = SourceMetrics::default();
        for line in source.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with("//") {
                continue;
            }
            if trimmed.starts_with("#[") {
                metrics.spec_lines += 1;
            } else if trimmed.starts_with("invariant!") {
                metrics.annot_lines += 1;
            } else {
                metrics.loc += 1;
            }
        }
        metrics
    }

    /// Annotation overhead as a percentage of LOC (rounded to the nearest
    /// integer), as reported in the paper's Table 1.
    pub fn annot_percent(&self) -> usize {
        (self.annot_lines * 100 + self.loc / 2)
            .checked_div(self.loc)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_distinguish_code_specs_and_annotations() {
        let src = r#"
            // a comment that should not count
            #[flux::sig(fn(usize[@n]) -> usize[n])]
            fn id(n: usize) -> usize {
                let mut i = 0;
                while i < n {
                    invariant!(i <= n);
                    i += 1;
                }
                i
            }
        "#;
        let m = SourceMetrics::of_source(src);
        assert_eq!(m.spec_lines, 1);
        assert_eq!(m.annot_lines, 1);
        assert_eq!(m.loc, 7);
    }

    #[test]
    fn annotation_percentage() {
        let m = SourceMetrics {
            loc: 37,
            spec_lines: 5,
            annot_lines: 9,
        };
        assert_eq!(m.annot_percent(), 24);
        let zero = SourceMetrics::default();
        assert_eq!(zero.annot_percent(), 0);
    }

    #[test]
    fn crate_example_round_trips() {
        let src = r#"
            #[flux::sig(fn(i32[@n]) -> bool[n > 0])]
            fn is_pos(n: i32) -> bool {
                if n > 0 { true } else { false }
            }
        "#;
        let program = parse_program(src).unwrap();
        assert_eq!(program.functions.len(), 1);
    }
}
