//! The lexer for the surface language.
//!
//! The surface language is a Rust subset (functions, `let`, `while`, `if`,
//! references, method calls on the refined containers) extended with
//! attribute syntax for Flux signatures and for the program-logic baseline's
//! specifications.

use crate::span::{Diagnostic, Span};
use std::fmt;

/// A token kind.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// An integer literal.
    Int(i128),
    /// A floating point literal.
    Float(f64),
    /// A string literal (used only inside attributes, e.g. messages).
    Str(String),

    // Punctuation.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `::`
    ColonColon,
    /// `.`
    Dot,
    /// `#`
    Hash,
    /// `@`
    At,
    /// `&`
    Amp,
    /// `&&`
    AmpAmp,
    /// `|`
    Pipe,
    /// `||`
    PipePipe,
    /// `!`
    Bang,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `+=`
    PlusEq,
    /// `-`
    Minus,
    /// `-=`
    MinusEq,
    /// `*`
    Star,
    /// `*=`
    StarEq,
    /// `/`
    Slash,
    /// `/=`
    SlashEq,
    /// `%`
    Percent,
    /// `->`
    Arrow,
    /// `=>`
    FatArrow,
    /// `==>` (Prusti-style implication inside specifications)
    LongArrow,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(i) => write!(f, "`{i}`"),
            Tok::Float(x) => write!(f, "`{x}`"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            other => {
                let s = match other {
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Comma => ",",
                    Tok::Semi => ";",
                    Tok::Colon => ":",
                    Tok::ColonColon => "::",
                    Tok::Dot => ".",
                    Tok::Hash => "#",
                    Tok::At => "@",
                    Tok::Amp => "&",
                    Tok::AmpAmp => "&&",
                    Tok::Pipe => "|",
                    Tok::PipePipe => "||",
                    Tok::Bang => "!",
                    Tok::Eq => "=",
                    Tok::EqEq => "==",
                    Tok::NotEq => "!=",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::Plus => "+",
                    Tok::PlusEq => "+=",
                    Tok::Minus => "-",
                    Tok::MinusEq => "-=",
                    Tok::Star => "*",
                    Tok::StarEq => "*=",
                    Tok::Slash => "/",
                    Tok::SlashEq => "/=",
                    Tok::Percent => "%",
                    Tok::Arrow => "->",
                    Tok::FatArrow => "=>",
                    Tok::LongArrow => "==>",
                    Tok::Eof => "<eof>",
                    _ => unreachable!(),
                };
                write!(f, "`{s}`")
            }
        }
    }
}

/// A token together with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind.
    pub tok: Tok,
    /// Its location.
    pub span: Span,
}

/// Lexes `source` into a token stream (terminated by [`Tok::Eof`]).
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostic> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '"' => {
                i += 1;
                let str_start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(Diagnostic::error(
                        "unterminated string literal",
                        Span::new(start, i),
                    ));
                }
                let text = source[str_start..i].to_owned();
                i += 1;
                tokens.push(Token {
                    tok: Tok::Str(text),
                    span: Span::new(start, i),
                });
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let is_float = i + 1 < bytes.len()
                    && bytes[i] == b'.'
                    && (bytes[i + 1] as char).is_ascii_digit();
                if is_float {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let text = &source[start..i];
                    let value: f64 = text.parse().map_err(|_| {
                        Diagnostic::error("invalid float literal", Span::new(start, i))
                    })?;
                    tokens.push(Token {
                        tok: Tok::Float(value),
                        span: Span::new(start, i),
                    });
                } else {
                    let text = &source[start..i];
                    let value: i128 = text.parse().map_err(|_| {
                        Diagnostic::error("invalid integer literal", Span::new(start, i))
                    })?;
                    tokens.push(Token {
                        tok: Tok::Int(value),
                        span: Span::new(start, i),
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Ident(source[start..i].to_owned()),
                    span: Span::new(start, i),
                });
            }
            _ => {
                let (tok, len) = match (
                    c,
                    bytes.get(i + 1).map(|b| *b as char),
                    bytes.get(i + 2).map(|b| *b as char),
                ) {
                    ('=', Some('='), Some('>')) => (Tok::LongArrow, 3),
                    (':', Some(':'), _) => (Tok::ColonColon, 2),
                    ('&', Some('&'), _) => (Tok::AmpAmp, 2),
                    ('|', Some('|'), _) => (Tok::PipePipe, 2),
                    ('=', Some('='), _) => (Tok::EqEq, 2),
                    ('!', Some('='), _) => (Tok::NotEq, 2),
                    ('<', Some('='), _) => (Tok::Le, 2),
                    ('>', Some('='), _) => (Tok::Ge, 2),
                    ('+', Some('='), _) => (Tok::PlusEq, 2),
                    ('-', Some('='), _) => (Tok::MinusEq, 2),
                    ('*', Some('='), _) => (Tok::StarEq, 2),
                    ('/', Some('='), _) => (Tok::SlashEq, 2),
                    ('-', Some('>'), _) => (Tok::Arrow, 2),
                    ('=', Some('>'), _) => (Tok::FatArrow, 2),
                    ('(', _, _) => (Tok::LParen, 1),
                    (')', _, _) => (Tok::RParen, 1),
                    ('{', _, _) => (Tok::LBrace, 1),
                    ('}', _, _) => (Tok::RBrace, 1),
                    ('[', _, _) => (Tok::LBracket, 1),
                    (']', _, _) => (Tok::RBracket, 1),
                    (',', _, _) => (Tok::Comma, 1),
                    (';', _, _) => (Tok::Semi, 1),
                    (':', _, _) => (Tok::Colon, 1),
                    ('.', _, _) => (Tok::Dot, 1),
                    ('#', _, _) => (Tok::Hash, 1),
                    ('@', _, _) => (Tok::At, 1),
                    ('&', _, _) => (Tok::Amp, 1),
                    ('|', _, _) => (Tok::Pipe, 1),
                    ('!', _, _) => (Tok::Bang, 1),
                    ('=', _, _) => (Tok::Eq, 1),
                    ('<', _, _) => (Tok::Lt, 1),
                    ('>', _, _) => (Tok::Gt, 1),
                    ('+', _, _) => (Tok::Plus, 1),
                    ('-', _, _) => (Tok::Minus, 1),
                    ('*', _, _) => (Tok::Star, 1),
                    ('/', _, _) => (Tok::Slash, 1),
                    ('%', _, _) => (Tok::Percent, 1),
                    _ => {
                        return Err(Diagnostic::error(
                            format!("unexpected character `{c}`"),
                            Span::new(start, start + 1),
                        ))
                    }
                };
                i += len;
                tokens.push(Token {
                    tok,
                    span: Span::new(start, i),
                });
            }
        }
    }
    tokens.push(Token {
        tok: Tok::Eof,
        span: Span::new(source.len(), source.len()),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_a_simple_function_header() {
        let toks = kinds("fn abs(x: i32) -> i32 {");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("fn".into()),
                Tok::Ident("abs".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::Colon,
                Tok::Ident("i32".into()),
                Tok::RParen,
                Tok::Arrow,
                Tok::Ident("i32".into()),
                Tok::LBrace,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(
            kinds("<= >= == != && || += -> => ==> ::"),
            vec![
                Tok::Le,
                Tok::Ge,
                Tok::EqEq,
                Tok::NotEq,
                Tok::AmpAmp,
                Tok::PipePipe,
                Tok::PlusEq,
                Tok::Arrow,
                Tok::FatArrow,
                Tok::LongArrow,
                Tok::ColonColon,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("42 0 3.25"),
            vec![Tok::Int(42), Tok::Int(0), Tok::Float(3.25), Tok::Eof]
        );
    }

    #[test]
    fn line_comments_are_skipped() {
        let toks = kinds("x // comment with fn keywords\ny");
        assert_eq!(
            toks,
            vec![Tok::Ident("x".into()), Tok::Ident("y".into()), Tok::Eof]
        );
    }

    #[test]
    fn attribute_syntax_tokens() {
        let toks = kinds("#[flux::sig(fn(i32[@n]) -> bool[n > 0])]");
        assert!(toks.contains(&Tok::Hash));
        assert!(toks.contains(&Tok::At));
        assert!(toks.contains(&Tok::ColonColon));
        assert!(toks.contains(&Tok::LBracket));
    }

    #[test]
    fn unexpected_character_is_an_error() {
        assert!(lex("let x = `bad`;").is_err());
    }

    #[test]
    fn spans_point_into_the_source() {
        let src = "fn foo() {}";
        let tokens = lex(src).unwrap();
        let foo = &tokens[1];
        assert_eq!(&src[foo.span.start..foo.span.end], "foo");
    }

    #[test]
    fn string_literals() {
        assert_eq!(
            kinds("\"hello world\""),
            vec![Tok::Str("hello world".into()), Tok::Eof]
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn deref_and_multiplication_share_star() {
        assert_eq!(
            kinds("*x * y"),
            vec![
                Tok::Star,
                Tok::Ident("x".into()),
                Tok::Star,
                Tok::Ident("y".into()),
                Tok::Eof
            ]
        );
    }
}
