//! The abstract syntax tree of the surface language.
//!
//! Programs are Rust-subset functions optionally annotated with
//!
//! * `#[flux::sig(...)]` refined signatures (checked by the Flux pipeline),
//! * `#[requires(...)]` / `#[ensures(...)]` contracts and `invariant!(...)`
//!   loop annotations (used by the program-logic baseline), and
//! * `#[flux::trusted]`, marking library functions whose bodies are not
//!   verified.
//!
//! Refinement predicates inside annotations are parsed directly into
//! [`flux_logic::Expr`].

use crate::span::Span;
use flux_logic::Expr as Pred;

/// A whole source file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// The functions, in source order.
    pub functions: Vec<FnDef>,
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&FnDef> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Declared Rust return type.
    pub ret: RustTy,
    /// The body.
    pub body: Block,
    /// The Flux refined signature, if any.
    pub flux_sig: Option<FluxSig>,
    /// Baseline preconditions.
    pub requires: Vec<Pred>,
    /// Baseline postconditions (may mention `result`).
    pub ensures: Vec<Pred>,
    /// True if the body is trusted (not verified).
    pub trusted: bool,
    /// Source span of the whole definition.
    pub span: Span,
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared Rust type.
    pub ty: RustTy,
    /// Whether the binding is `mut`.
    pub mutable: bool,
    /// Source span.
    pub span: Span,
}

/// A (surface) Rust type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RustTy {
    /// `i32`, `i64`, `isize` — signed integers (all modelled as `int`).
    Int,
    /// `usize`, `u32`, `u64` — unsigned integers.
    Uint,
    /// `bool`.
    Bool,
    /// `f32` / `f64`.
    Float,
    /// `()`.
    Unit,
    /// `RVec<T>`.
    RVec(Box<RustTy>),
    /// `RMat<T>`.
    RMat(Box<RustTy>),
    /// `&T` or `&mut T`.
    Ref(Mutability, Box<RustTy>),
}

impl RustTy {
    /// True for the integer types (signed or unsigned).
    pub fn is_integral(&self) -> bool {
        matches!(self, RustTy::Int | RustTy::Uint)
    }
}

/// Mutability of a reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutability {
    /// `&T`.
    Shared,
    /// `&mut T`.
    Mutable,
}

/// A block: statements followed by an optional tail expression.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// The statements.
    pub stmts: Vec<Stmt>,
    /// The value of the block, if any.
    pub tail: Option<Box<Expr>>,
    /// Source span.
    pub span: Span,
}

/// Compound assignment operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
    /// `/=`
    DivAssign,
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `let [mut] name [: ty] = init;`
    Let {
        /// Bound variable.
        name: String,
        /// Whether declared `mut`.
        mutable: bool,
        /// Optional type ascription.
        ty: Option<RustTy>,
        /// Initialiser.
        init: Expr,
        /// Span.
        span: Span,
    },
    /// `place op= value;`
    Assign {
        /// The place being assigned (variable, deref, or index expression).
        place: Expr,
        /// The operator.
        op: AssignOp,
        /// The assigned value.
        value: Expr,
        /// Span.
        span: Span,
    },
    /// `while cond { ... }` with optional baseline `invariant!(...)`
    /// annotations written at the top of the body.
    While {
        /// Loop condition.
        cond: Expr,
        /// Baseline loop invariants (empty under Flux).
        invariants: Vec<Pred>,
        /// Loop body.
        body: Block,
        /// Span.
        span: Span,
    },
    /// `return [expr];`
    Return {
        /// Returned value.
        value: Option<Expr>,
        /// Span.
        span: Span,
    },
    /// `assert!(cond);` — checked statically by both verifiers.
    Assert {
        /// Asserted condition (a program expression of type `bool`).
        cond: Expr,
        /// Span.
        span: Span,
    },
    /// An expression statement (including `if` statements and calls).
    Expr {
        /// The expression.
        expr: Expr,
        /// Span.
        span: Span,
    },
}

impl Stmt {
    /// The span of this statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Let { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Assert { span, .. }
            | Stmt::Expr { span, .. } => *span,
        }
    }
}

/// Binary operators of the surface expression language.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOpKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOpKind {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i128, Span),
    /// Float literal.
    Float(f64, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// Variable reference.
    Var(String, Span),
    /// Unary operation.
    Unary(UnOpKind, Box<Expr>, Span),
    /// Binary operation.
    Binary(BinOpKind, Box<Expr>, Box<Expr>, Span),
    /// Free function call, e.g. `abs(x)` or `RVec::new()` (the callee is the
    /// full path).
    Call {
        /// Callee name (possibly a path like `RVec::new`).
        func: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Span.
        span: Span,
    },
    /// Method call, e.g. `v.len()`, `v.push(x)`, `v.get_mut(i)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments (excluding the receiver).
        args: Vec<Expr>,
        /// Span.
        span: Span,
    },
    /// Index sugar `v[i]`, desugared by lowering to `get`/`set`.
    Index {
        /// The indexed container.
        recv: Box<Expr>,
        /// The index.
        index: Box<Expr>,
        /// Span.
        span: Span,
    },
    /// `&x` or `&mut x`.
    Borrow {
        /// Mutability of the borrow.
        mutability: Mutability,
        /// The borrowed place.
        place: Box<Expr>,
        /// Span.
        span: Span,
    },
    /// `*x`.
    Deref(Box<Expr>, Span),
    /// `if cond { then } else { els }`; the `else` branch is optional for
    /// statement-position `if`s.
    If {
        /// The condition.
        cond: Box<Expr>,
        /// The then branch.
        then: Block,
        /// The else branch.
        els: Option<Block>,
        /// Span.
        span: Span,
    },
}

impl Expr {
    /// The span of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Float(_, s)
            | Expr::Bool(_, s)
            | Expr::Var(_, s)
            | Expr::Unary(_, _, s)
            | Expr::Binary(_, _, _, s)
            | Expr::Call { span: s, .. }
            | Expr::MethodCall { span: s, .. }
            | Expr::Index { span: s, .. }
            | Expr::Borrow { span: s, .. }
            | Expr::Deref(_, s)
            | Expr::If { span: s, .. } => *s,
        }
    }
}

// ---------------------------------------------------------------------------
// Flux signatures
// ---------------------------------------------------------------------------

/// Reference kinds in Flux signatures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefKind {
    /// `&T`
    Shared,
    /// `&mut T`
    Mut,
    /// `&strg T`
    Strg,
}

/// A refinement index argument in a signature, e.g. the `@n` or `n + 1` in
/// `i32[@n]` / `i32[n + 1]`.
#[derive(Clone, Debug, PartialEq)]
pub enum IndexArg {
    /// `@x`: binds a refinement parameter.
    Bind(String),
    /// An index expression over previously bound refinement parameters.
    Expr(Pred),
}

/// The refinement attached to a base type in a signature.
#[derive(Clone, Debug, PartialEq)]
pub enum RefinementAnnot {
    /// `B[e₁, …, eₙ]`
    Indices(Vec<IndexArg>),
    /// `B{v: p}`
    Exists {
        /// The bound value variable.
        binder: String,
        /// The constraining predicate.
        pred: Pred,
    },
}

/// A refined type annotation as written in a `#[flux::sig(...)]` attribute.
#[derive(Clone, Debug, PartialEq)]
pub enum RTyAnnot {
    /// A (possibly generic) base type with an optional refinement, e.g.
    /// `i32[@n]`, `RVec<f32>[n]`, `nat`, `bool`.
    Base {
        /// The base type name (`i32`, `usize`, `bool`, `f32`, `RVec`,
        /// `RMat`, or an alias like `nat`).
        base: String,
        /// Generic arguments (element types for `RVec`/`RMat`).
        args: Vec<RTyAnnot>,
        /// The refinement, if any.
        refinement: Option<RefinementAnnot>,
    },
    /// A reference type.
    Ref {
        /// The reference kind.
        kind: RefKind,
        /// The referent.
        inner: Box<RTyAnnot>,
    },
}

/// One parameter of a Flux signature.
#[derive(Clone, Debug, PartialEq)]
pub struct SigParam {
    /// Optional parameter name (required when the parameter is referred to
    /// in an `ensures` clause).
    pub name: Option<String>,
    /// The refined type.
    pub ty: RTyAnnot,
}

/// An `ensures` clause `*name: ty` describing the updated type of a strong
/// reference after the call.
#[derive(Clone, Debug, PartialEq)]
pub struct EnsuresClause {
    /// The parameter whose referent is updated.
    pub param: String,
    /// The updated type.
    pub ty: RTyAnnot,
}

/// A parsed `#[flux::sig(fn(...) -> ... ensures ...)]` attribute.
#[derive(Clone, Debug, PartialEq)]
pub struct FluxSig {
    /// Parameter types.
    pub params: Vec<SigParam>,
    /// Return type (`None` means unit).
    pub ret: Option<RTyAnnot>,
    /// Strong-reference update clauses.
    pub ensures: Vec<EnsuresClause>,
    /// Span of the attribute.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_lookup_by_name() {
        let f = FnDef {
            name: "foo".into(),
            params: vec![],
            ret: RustTy::Unit,
            body: Block {
                stmts: vec![],
                tail: None,
                span: Span::dummy(),
            },
            flux_sig: None,
            requires: vec![],
            ensures: vec![],
            trusted: false,
            span: Span::dummy(),
        };
        let p = Program { functions: vec![f] };
        assert!(p.function("foo").is_some());
        assert!(p.function("bar").is_none());
    }

    #[test]
    fn rust_ty_integrality() {
        assert!(RustTy::Int.is_integral());
        assert!(RustTy::Uint.is_integral());
        assert!(!RustTy::Bool.is_integral());
        assert!(!RustTy::RVec(Box::new(RustTy::Int)).is_integral());
    }

    #[test]
    fn expr_and_stmt_spans() {
        let e = Expr::Int(3, Span::new(5, 6));
        assert_eq!(e.span(), Span::new(5, 6));
        let s = Stmt::Return {
            value: None,
            span: Span::new(1, 8),
        };
        assert_eq!(s.span(), Span::new(1, 8));
    }
}
