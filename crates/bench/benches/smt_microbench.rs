//! Micro-benchmarks of the SMT substrate: quantifier-free queries (as issued
//! by Flux) versus quantified queries (as issued by the baseline), isolating
//! the §5.2 explanation for the verification-time gap.

use criterion::{criterion_group, criterion_main, Criterion};
use flux_logic::{Expr, Name, Sort, SortCtx};
use flux_smt::Solver;

fn bench_smt(c: &mut Criterion) {
    let mut group = c.benchmark_group("smt");
    group.sample_size(30);

    // Quantifier-free: i >= 0 && i < n  ⟹  i + 1 <= n
    group.bench_function("quantifier-free-vc", |b| {
        let mut ctx = SortCtx::new();
        ctx.push(Name::intern("i"), Sort::Int);
        ctx.push(Name::intern("n"), Sort::Int);
        let i = Expr::var(Name::intern("i"));
        let n = Expr::var(Name::intern("n"));
        let hyps = vec![Expr::ge(i.clone(), Expr::int(0)), Expr::lt(i.clone(), n.clone())];
        let goal = Expr::le(i + Expr::int(1), n);
        b.iter(|| {
            let mut solver = Solver::with_defaults();
            assert!(solver.check_valid_imp(&ctx, &hyps, &goal).is_valid());
        })
    });

    // Quantified: an array frame axiom must be instantiated to prove a read.
    group.bench_function("quantified-vc", |b| {
        let mut ctx = SortCtx::new();
        ctx.push(Name::intern("i"), Sort::Int);
        ctx.push(Name::intern("lenv"), Sort::Int);
        ctx.push(Name::intern("a"), Sort::Array);
        let i = Expr::var(Name::intern("i"));
        let lenv = Expr::var(Name::intern("lenv"));
        let a = Expr::var(Name::intern("a"));
        let j = Name::intern("j");
        let axiom = Expr::forall(
            vec![(j, Sort::Int)],
            Expr::imp(
                Expr::and(Expr::ge(Expr::var(j), Expr::int(0)), Expr::lt(Expr::var(j), lenv.clone())),
                Expr::ge(Expr::app("select", vec![a.clone(), Expr::var(j)]), Expr::int(0)),
            ),
        );
        let hyps = vec![axiom, Expr::ge(i.clone(), Expr::int(0)), Expr::lt(i.clone(), lenv)];
        let goal = Expr::ge(Expr::app("select", vec![a, i]), Expr::int(0));
        b.iter(|| {
            let mut solver = Solver::with_defaults();
            assert!(solver.check_valid_imp(&ctx, &hyps, &goal).is_valid());
        })
    });

    group.finish();
}

criterion_group!(benches, bench_smt);
criterion_main!(benches);
