//! Micro-benchmarks of the SMT substrate: quantifier-free queries (as issued
//! by Flux) versus quantified queries (as issued by the baseline), isolating
//! the §5.2 explanation for the verification-time gap — plus a comparison of
//! one-shot solving against the incremental [`flux_smt::Session`] path, which
//! preprocesses and CNF-converts the shared hypotheses once per session.

use flux_bench::harness::Criterion;
use flux_logic::{Expr, ExprId, Name, Sort, SortCtx};
use flux_smt::linear::{LinConstraint, LinExpr};
use flux_smt::rational::Rational;
use flux_smt::simplex::{check_lia, IncrementalSimplex, LiaResult};
use flux_smt::{LiaConfig, Session, SmtConfig, SmtStats, Solver};

fn qf_vc() -> (SortCtx, Vec<Expr>, Expr) {
    let mut ctx = SortCtx::new();
    ctx.push(Name::intern("i"), Sort::Int);
    ctx.push(Name::intern("n"), Sort::Int);
    let i = Expr::var(Name::intern("i"));
    let n = Expr::var(Name::intern("n"));
    let hyps = vec![
        Expr::ge(i.clone(), Expr::int(0)),
        Expr::lt(i.clone(), n.clone()),
    ];
    let goal = Expr::le(i + Expr::int(1), n);
    (ctx, hyps, goal)
}

fn bench_smt(c: &mut Criterion) {
    let mut group = c.benchmark_group("smt");
    group.sample_size(30);

    // Quantifier-free: i >= 0 && i < n  ⟹  i + 1 <= n
    group.bench_function("quantifier-free-vc", |b| {
        let (ctx, hyps, goal) = qf_vc();
        b.iter(|| {
            let mut solver = Solver::with_defaults();
            assert!(solver.check_valid_imp(&ctx, &hyps, &goal).is_valid());
        })
    });

    // The same implication checked 32 times: one-shot rebuilds the pipeline
    // for every query, the session preprocesses the hypotheses once.
    group.bench_function("32-goals-one-shot", |b| {
        let (ctx, hyps, _) = qf_vc();
        b.iter(|| {
            let mut solver = Solver::with_defaults();
            for k in 0..32 {
                let g = Expr::le(
                    Expr::var(Name::intern("i")) + Expr::int(1),
                    Expr::var(Name::intern("n")) + Expr::int(k),
                );
                assert!(solver.check_valid_imp(&ctx, &hyps, &g).is_valid());
            }
        })
    });
    group.bench_function("32-goals-session", |b| {
        let (ctx, hyps, _) = qf_vc();
        b.iter(|| {
            let mut session = Session::assume(SmtConfig::default(), &ctx, &hyps);
            for k in 0..32 {
                let g = Expr::le(
                    Expr::var(Name::intern("i")) + Expr::int(1),
                    Expr::var(Name::intern("n")) + Expr::int(k),
                );
                assert!(session.check(&g).is_valid());
            }
        })
    });

    // Simplex reuse: one constraint family asserted and retracted 32 times
    // with a varying extra bound — the DPLL(T) theory-check pattern.  The
    // one-shot path rebuilds a tableau from scratch every round; the
    // incremental tableau registers the rows once and each round merely
    // toggles bounds inside a push/pop scope, reusing the pivoted basis.
    let family: Vec<LinConstraint> = {
        let names = ["sx1", "sx2", "sx3", "sx4", "sx5", "sx6"];
        let mut cs = Vec::new();
        for w in names.windows(2) {
            // w[0] <= w[1]
            let mut lhs = LinExpr::var(Name::intern(w[0]));
            lhs.add_term(Name::intern(w[1]), -Rational::ONE);
            cs.push(LinConstraint::le_zero(lhs));
        }
        // sx1 >= 0
        let mut lhs = LinExpr::var(Name::intern("sx1")).scaled(-Rational::ONE);
        lhs.add_constant(Rational::ZERO);
        cs.push(LinConstraint::le_zero(lhs));
        cs
    };
    let round_bound = |k: i128| {
        // sx6 <= 40 + k
        let mut lhs = LinExpr::var(Name::intern("sx6"));
        lhs.add_constant(Rational::int(-40 - k));
        LinConstraint::le_zero(lhs)
    };
    group.bench_function("lia-32-rounds-one-shot", |b| {
        b.iter(|| {
            for k in 0..32 {
                let mut cs = family.clone();
                cs.push(round_bound(k));
                assert!(matches!(
                    check_lia(&cs, &LiaConfig::default()),
                    LiaResult::Feasible(_)
                ));
            }
        })
    });
    group.bench_function("lia-32-rounds-incremental", |b| {
        b.iter(|| {
            let mut simplex = IncrementalSimplex::new(LiaConfig::default());
            let slots: Vec<_> = family.iter().map(|c| simplex.register(c)).collect();
            let bounds: Vec<_> = (0..32).map(|k| simplex.register(&round_bound(k))).collect();
            for k in 0..32 {
                simplex.push();
                for (tag, slot) in slots.iter().enumerate() {
                    simplex.assert_constraint(*slot, true, tag).unwrap();
                }
                simplex
                    .assert_constraint(bounds[k], true, slots.len())
                    .unwrap();
                assert!(matches!(simplex.check_integer(), LiaResult::Feasible(_)));
                simplex.pop();
            }
        })
    });

    // Session retention: the weakening loop's retract/re-assert pattern.
    // The schedule walks 16 hypothesis conjunct sets, each toggling two
    // conjuncts of its predecessor (a retraction plus a re-assertion — the
    // shape a κ-weakening produces), and checks a goal battery after every
    // move.  The rebuild path opens a fresh session per set, paying atom
    // registration and hypothesis assertion each time; the retained path
    // re-points one live session via `update_hypotheses`, keeping the SAT
    // core's variable space, its learned theory lemmas and the simplex
    // basis with its warm pivots.
    let retention_ctx = {
        let mut ctx = SortCtx::new();
        for v in ["sr_a", "sr_b", "sr_c", "sr_d"] {
            ctx.push(Name::intern(v), Sort::Int);
        }
        ctx
    };
    let (retention_schedule, retention_goals) = {
        let var = |s: &str| Expr::var(Name::intern(s));
        // Simultaneously satisfiable, so every subset keeps the session in
        // the incremental mode and `update_hypotheses` always succeeds.
        let pool: Vec<ExprId> = [
            Expr::ge(var("sr_a"), Expr::int(0)),
            Expr::le(var("sr_a"), var("sr_b")),
            Expr::le(var("sr_b"), var("sr_c")),
            Expr::le(var("sr_c"), var("sr_d")),
            Expr::le(var("sr_d"), Expr::int(100)),
            Expr::ge(var("sr_b"), Expr::int(1)),
            Expr::ge(var("sr_c"), Expr::int(2)),
            Expr::le(var("sr_a") + var("sr_b"), var("sr_d")),
        ]
        .iter()
        .map(ExprId::intern)
        .collect();
        let goals: Vec<ExprId> = [
            Expr::ge(var("sr_b"), Expr::int(0)),
            Expr::le(var("sr_a"), var("sr_d")),
            Expr::ge(var("sr_d"), Expr::int(2)),
            Expr::eq(var("sr_a"), Expr::int(3)),
        ]
        .iter()
        .map(ExprId::intern)
        .collect();
        let mut active = vec![true; pool.len()];
        let mut schedule = Vec::new();
        for k in 0..16usize {
            active[(k * 5 + 1) % pool.len()] ^= true;
            active[(k * 3 + 2) % pool.len()] ^= true;
            schedule.push(
                active
                    .iter()
                    .zip(&pool)
                    .filter_map(|(&on, &id)| on.then_some(id))
                    .collect::<Vec<ExprId>>(),
            );
        }
        (schedule, goals)
    };
    group.bench_function("session-retention-rebuild", |b| {
        b.iter(|| {
            for hyps in &retention_schedule {
                let mut session = Session::assume_ids(SmtConfig::default(), &retention_ctx, hyps);
                for &g in &retention_goals {
                    let _ = session.check_id(g);
                }
            }
        })
    });
    group.bench_function("session-retention-incremental", |b| {
        b.iter(|| {
            let mut session =
                Session::assume_ids(SmtConfig::default(), &retention_ctx, &retention_schedule[0]);
            for hyps in &retention_schedule {
                assert!(session.update_hypotheses(hyps));
                for &g in &retention_goals {
                    let _ = session.check_id(g);
                }
            }
        })
    });

    // Long-session simplex: 479 registered rows, and check rounds that each
    // touch only four of them.  Setup (registration and the base asserts)
    // happens outside the timed region — what is measured is the steady
    // state of an aged session, where the historical row-scan path pays
    // O(rows) per bound slide regardless of how many rows mention the
    // variable while the occurrence-list path touches only the rows
    // containing the slid variable and stays flat as the session grows.
    let long_session_setup = |cfg: LiaConfig| {
        let n = 160usize;
        let name = |i: usize| Name::intern(&format!("lsx{i}"));
        let mut family = Vec::new();
        for i in 0..n - 1 {
            // x_i <= x_{i+1}
            let mut lhs = LinExpr::var(name(i));
            lhs.add_term(name(i + 1), -Rational::ONE);
            family.push(LinConstraint::le_zero(lhs));
        }
        for i in 0..n {
            // x_i >= 0 and x_i <= 1000.
            family.push(LinConstraint::le_zero(
                LinExpr::var(name(i)).scaled(-Rational::ONE),
            ));
            let mut lhs = LinExpr::var(name(i));
            lhs.add_constant(Rational::int(-1000));
            family.push(LinConstraint::le_zero(lhs));
        }
        let extras: Vec<LinConstraint> = (0..n / 4)
            .map(|i| {
                // x_{4i} <= 500: a tighter, still satisfiable round bound.
                let mut lhs = LinExpr::var(name(4 * i));
                lhs.add_constant(Rational::int(-500));
                LinConstraint::le_zero(lhs)
            })
            .collect();
        let mut simplex = IncrementalSimplex::new(cfg);
        let slots: Vec<_> = family.iter().map(|c| simplex.register(c)).collect();
        let extra_slots: Vec<_> = extras.iter().map(|c| simplex.register(c)).collect();
        for (tag, slot) in slots.iter().enumerate() {
            simplex.assert_constraint(*slot, true, tag).unwrap();
        }
        (simplex, extra_slots, slots.len())
    };
    let long_session_rounds = |simplex: &mut IncrementalSimplex,
                               extra_slots: &[flux_smt::simplex::SlotId],
                               base: usize| {
        for round in 0..64 {
            simplex.push();
            for j in 0..4 {
                let pick = (round * 4 + j) % extra_slots.len();
                simplex
                    .assert_constraint(extra_slots[pick], true, base + j)
                    .unwrap();
            }
            assert!(matches!(simplex.check_integer(), LiaResult::Feasible(_)));
            simplex.pop();
        }
    };
    group.bench_function("lia-long-session-occ-lists", |b| {
        let cfg = LiaConfig {
            row_scan: false,
            ..LiaConfig::default()
        };
        let (mut simplex, extra_slots, base) = long_session_setup(cfg);
        b.iter(|| long_session_rounds(&mut simplex, &extra_slots, base))
    });
    group.bench_function("lia-long-session-row-scan", |b| {
        let cfg = LiaConfig {
            row_scan: true,
            ..LiaConfig::default()
        };
        let (mut simplex, extra_slots, base) = long_session_setup(cfg);
        b.iter(|| long_session_rounds(&mut simplex, &extra_slots, base))
    });

    // Quantified: an array frame axiom must be instantiated to prove a read.
    group.bench_function("quantified-vc", |b| {
        let mut ctx = SortCtx::new();
        ctx.push(Name::intern("i"), Sort::Int);
        ctx.push(Name::intern("lenv"), Sort::Int);
        ctx.push(Name::intern("a"), Sort::Array);
        let i = Expr::var(Name::intern("i"));
        let lenv = Expr::var(Name::intern("lenv"));
        let a = Expr::var(Name::intern("a"));
        let j = Name::intern("j");
        let axiom = Expr::forall(
            vec![(j, Sort::Int)],
            Expr::imp(
                Expr::and(
                    Expr::ge(Expr::var(j), Expr::int(0)),
                    Expr::lt(Expr::var(j), lenv.clone()),
                ),
                Expr::ge(
                    Expr::app("select", vec![a.clone(), Expr::var(j)]),
                    Expr::int(0),
                ),
            ),
        );
        let hyps = vec![
            axiom,
            Expr::ge(i.clone(), Expr::int(0)),
            Expr::lt(i.clone(), lenv),
        ];
        let goal = Expr::ge(Expr::app("select", vec![a, i]), Expr::int(0));
        b.iter(|| {
            let mut solver = Solver::with_defaults();
            assert!(solver.check_valid_imp(&ctx, &hyps, &goal).is_valid());
        })
    });

    group.finish();
}

/// Prints the engine statistics for one sweep of the session workload so the
/// perf trajectory (queries, sessions, SAT rounds) is visible in bench logs.
fn report_engine_stats() {
    let (ctx, hyps, _) = qf_vc();
    let mut solver = Solver::with_defaults();
    let mut session = solver.assume(&ctx, &hyps);
    for k in 0..32 {
        let g = Expr::le(
            Expr::var(Name::intern("i")) + Expr::int(1),
            Expr::var(Name::intern("n")) + Expr::int(k),
        );
        let _ = session.check(&g);
    }
    let session_stats: SmtStats = *session.stats();
    solver.absorb(session_stats);
    let s = solver.stats;
    println!(
        "engine stats: {} queries, {} sessions opened, {} sat rounds, {} theory checks",
        s.queries, s.sessions, s.sat_rounds, s.theory_checks
    );
}

fn main() {
    let mut c = Criterion::new();
    bench_smt(&mut c);
    report_engine_stats();
}
