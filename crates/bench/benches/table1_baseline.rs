//! Bench: program-logic baseline verification time per Table 1 benchmark
//! (E2).

use flux_bench::harness::Criterion;

fn bench_baseline(c: &mut Criterion) {
    let config = flux::VerifyConfig::default();
    let mut group = c.benchmark_group("table1_baseline");
    group.sample_size(10);
    for b in flux::benchmarks()
        .into_iter()
        .filter(|b| matches!(b.name, "bsearch" | "dotprod" | "kmeans"))
    {
        group.bench_function(b.name, |bencher| {
            bencher.iter(|| {
                flux::verify_source(b.baseline_src, flux::Mode::Baseline, &config).unwrap()
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::new();
    bench_baseline(&mut c);
}
