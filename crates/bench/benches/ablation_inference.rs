//! Ablation A1: the cost of liquid inference.
//!
//! Compares constraint generation + fixpoint solving against constraint
//! generation alone, quantifying how much of Flux's runtime is spent in the
//! inference phase that replaces hand-written loop invariants.  Also
//! compares the incremental query engine (sessions + validity cache, the
//! default) against one-shot solving.

use flux_bench::harness::{black_box, Criterion};
use flux_check::checker::Generator;
use flux_fixpoint::{FixConfig, FixpointSolver};
use flux_ir::ResolvedProgram;
use flux_logic::SortCtx;

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_inference");
    group.sample_size(10);
    for name in ["kmeans", "fft", "bsearch"] {
        let b = flux::benchmark(name).unwrap();
        let program = flux_syntax::parse_program(b.flux_src).unwrap();
        let resolved = ResolvedProgram::resolve(&program).unwrap();
        let fn_names: Vec<String> = resolved.iter().map(|f| f.def.name.clone()).collect();
        group.bench_function(format!("{name}/constraint-gen-only"), |bencher| {
            bencher.iter(|| {
                for f in &fn_names {
                    let gen = Generator::new(&resolved).gen_function(f).unwrap();
                    black_box(gen.constraint.num_heads());
                }
            })
        });
        group.bench_function(format!("{name}/gen-plus-inference"), |bencher| {
            bencher.iter(|| {
                for f in &fn_names {
                    let gen = Generator::new(&resolved).gen_function(f).unwrap();
                    let mut solver = FixpointSolver::with_defaults();
                    black_box(solver.solve(&gen.constraint, &gen.kvars, &SortCtx::new()));
                }
            })
        });
        group.bench_function(format!("{name}/gen-plus-inference-one-shot"), |bencher| {
            let config = FixConfig {
                incremental: false,
                ..FixConfig::default()
            };
            bencher.iter(|| {
                for f in &fn_names {
                    let gen = Generator::new(&resolved).gen_function(f).unwrap();
                    let mut solver = FixpointSolver::new(config.clone());
                    black_box(solver.solve(&gen.constraint, &gen.kvars, &SortCtx::new()));
                }
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::new();
    bench_inference(&mut c);
}
