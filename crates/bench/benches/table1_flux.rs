//! Bench: Flux verification time per Table 1 benchmark (E1).

use flux_bench::harness::Criterion;

fn bench_flux(c: &mut Criterion) {
    let config = flux::VerifyConfig::default();
    let mut group = c.benchmark_group("table1_flux");
    group.sample_size(10);
    for b in flux::benchmarks()
        .into_iter()
        .filter(|b| matches!(b.name, "bsearch" | "dotprod" | "kmeans"))
    {
        group.bench_function(b.name, |bencher| {
            bencher.iter(|| flux::verify_source(b.flux_src, flux::Mode::Flux, &config).unwrap())
        });
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::new();
    bench_flux(&mut c);
}
