//! Criterion bench: Flux verification time per Table 1 benchmark (E1).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_flux(c: &mut Criterion) {
    let config = flux::VerifyConfig::default();
    let mut group = c.benchmark_group("table1_flux");
    group.sample_size(10);
    for b in flux::benchmarks().into_iter().filter(|b| matches!(b.name, "bsearch" | "dotprod" | "kmeans")) {
        group.bench_function(b.name, |bencher| {
            bencher.iter(|| {
                flux::verify_source(b.flux_src, flux::Mode::Flux, &config).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flux);
criterion_main!(benches);
