//! Ablation A2: strong references.
//!
//! Verifies the push-through-a-reference pattern in both styles: with a
//! `&strg` signature (accepted) and with a plain `&mut` signature (rejected),
//! measuring the cost of each check.

use flux_bench::harness::Criterion;

const WITH_STRG: &str = r#"
#[flux::sig(fn(v: &strg RVec<i32>[@n], i32) ensures *v: RVec<i32>[n + 1])]
fn push_it(v: &mut RVec<i32>, x: i32) {
    v.push(x);
}
"#;

const WITH_MUT: &str = r#"
#[flux::sig(fn(v: &mut RVec<i32>[@n], i32))]
fn push_it(v: &mut RVec<i32>, x: i32) {
    v.push(x);
}
"#;

fn bench_strong_refs(c: &mut Criterion) {
    let config = flux::VerifyConfig::default();
    let mut group = c.benchmark_group("ablation_strong_refs");
    group.sample_size(20);
    group.bench_function("strg-accepted", |b| {
        b.iter(|| {
            let out = flux::verify_source(WITH_STRG, flux::Mode::Flux, &config).unwrap();
            assert!(out.safe);
        })
    });
    group.bench_function("mut-rejected", |b| {
        b.iter(|| {
            let out = flux::verify_source(WITH_MUT, flux::Mode::Flux, &config).unwrap();
            assert!(!out.safe);
        })
    });
    group.finish();
}

fn main() {
    let mut c = Criterion::new();
    bench_strong_refs(&mut c);
}
