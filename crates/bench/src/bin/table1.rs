//! Regenerates Table 1 of "Flux: Liquid Types for Rust".
//!
//! For every benchmark the harness verifies the Flux flavour with the
//! refinement-type checker and the baseline flavour with the program-logic
//! verifier, then prints LOC / spec lines / annotation lines / verification
//! time for both, mirroring the layout of the paper's table, plus a
//! per-benchmark PASS/FAIL verdict against the expected-outcome matrix.
//!
//! The process exits nonzero when any `(benchmark, mode)` cell deviates from
//! `flux_suite::expect_verifies`, so CI can gate on the full matrix.
//!
//! With `--json [PATH]` the run is additionally written as machine-readable
//! JSON (default path `BENCH_table1.json`): per-benchmark wall-clock plus
//! the full query-engine statistics of both verifiers, so per-PR regressions
//! in queries issued (or prunes/reuse lost) are visible by diffing one file.
//! Before overwriting, the fresh run is *gated* against the committed
//! snapshot: the job fails on a >2× total wall-clock or a >20% total
//! `smt_queries` regression (`--no-gate` skips the comparison, e.g. when a
//! regression is intentional and the snapshot is being re-baselined).

use std::process::ExitCode;

/// Totals the perf gate compares, extracted from a snapshot or a fresh run.
struct GateTotals {
    /// Flux + baseline wall-clock, in seconds.
    time_s: f64,
    /// Flux + baseline validity queries.
    smt_queries: f64,
}

fn snapshot_totals(raw: &str) -> Result<GateTotals, String> {
    let value = flux_bench::json::parse(raw)?;
    let totals = value.get("totals").ok_or("snapshot has no `totals`")?;
    let time_of = |key: &str| {
        totals
            .get(key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("snapshot has no `totals.{key}`"))
    };
    let mut smt_queries = 0.0;
    let benchmarks = value
        .get("benchmarks")
        .and_then(|v| v.as_array())
        .ok_or("snapshot has no `benchmarks` array")?;
    for row in benchmarks {
        for side in ["flux", "baseline"] {
            smt_queries += row
                .get(side)
                .and_then(|v| v.get("smt_queries"))
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("snapshot row lacks `{side}.smt_queries`"))?;
        }
    }
    Ok(GateTotals {
        time_s: time_of("flux_time_s")? + time_of("baseline_time_s")?,
        smt_queries,
    })
}

fn run_totals(rows: &[flux::TableRow]) -> GateTotals {
    let mut time_s = 0.0;
    let mut smt_queries = 0.0;
    for row in rows.iter().filter(|r| !r.is_library) {
        time_s += row.flux.time.as_secs_f64() + row.baseline.time.as_secs_f64();
        smt_queries += (row.flux.stats.smt_queries + row.baseline.stats.smt_queries) as f64;
    }
    GateTotals {
        time_s,
        smt_queries,
    }
}

/// Compares the fresh run against the committed snapshot.  Returns `false`
/// on a regression beyond the thresholds.
fn gate(rows: &[flux::TableRow], committed: &str) -> bool {
    let committed = match snapshot_totals(committed) {
        Ok(totals) => totals,
        Err(e) => {
            // An unreadable snapshot cannot gate anything; report and pass
            // (the refreshed file written below re-baselines it).
            println!("perf gate: committed snapshot not comparable ({e})");
            return true;
        }
    };
    let fresh = run_totals(rows);
    println!(
        "perf gate: wall-clock {:.3}s vs committed {:.3}s (limit {:.3}s), \
         smt_queries {} vs committed {} (limit {})",
        fresh.time_s,
        committed.time_s,
        committed.time_s * 2.0,
        fresh.smt_queries,
        committed.smt_queries,
        committed.smt_queries * 1.2,
    );
    let mut ok = true;
    if fresh.time_s > committed.time_s * 2.0 {
        println!("perf gate FAILED: total wall-clock regressed more than 2x");
        ok = false;
    }
    if fresh.smt_queries > committed.smt_queries * 1.2 {
        println!("perf gate FAILED: total smt_queries regressed more than 20%");
        ok = false;
    }
    if ok {
        println!("perf gate passed");
    }
    ok
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mut json_path: Option<String> = None;
    let mut gate_enabled = true;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                // The path operand is optional: a following flag (e.g.
                // `--json --no-gate`) must not be swallowed as a filename.
                json_path = Some(match args.peek() {
                    Some(next) if !next.starts_with("--") => {
                        args.next().expect("peeked operand exists")
                    }
                    _ => "BENCH_table1.json".to_owned(),
                });
            }
            "--no-gate" => gate_enabled = false,
            other => {
                eprintln!("unknown argument: {other} (supported: --json [PATH], --no-gate)");
                return ExitCode::FAILURE;
            }
        }
    }
    let config = flux::VerifyConfig::default();
    let rows = flux::run_table1(&config);
    println!("{}", flux::render_table1(&rows));
    println!("incremental query engine (Flux mode | baseline):");
    println!("{}", flux::render_query_stats(&rows));
    let mut gate_ok = true;
    if let Some(path) = &json_path {
        // Gate against the committed snapshot *before* overwriting it.
        if gate_enabled {
            match std::fs::read_to_string(path) {
                Ok(committed) => gate_ok = gate(&rows, &committed),
                Err(e) => println!("perf gate: no committed snapshot at {path} ({e})"),
            }
        }
        let json = flux::render_table1_json(&rows);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}:");
        println!("{json}");
    }

    // Per-benchmark verdicts against the expected-outcome matrix.
    println!(
        "{:<10} | {:>6} {:>9} | verdict",
        "benchmark", "flux", "baseline"
    );
    println!("{}", "-".repeat(44));
    let mut deviations: Vec<&flux::TableRow> = Vec::new();
    for row in rows.iter().filter(|r| !r.is_library) {
        let cells = [
            (flux_suite::Mode::Flux, row.flux.safe),
            (flux_suite::Mode::Baseline, row.baseline.safe),
        ];
        let ok = cells
            .iter()
            .all(|(mode, safe)| *safe == flux_suite::expect_verifies(&row.name, *mode));
        if !ok {
            deviations.push(row);
        }
        println!(
            "{:<10} | {:>6} {:>9} | {}",
            row.name,
            if row.flux.safe { "yes" } else { "NO" },
            if row.baseline.safe { "yes" } else { "NO" },
            if ok { "PASS" } else { "FAIL" },
        );
    }
    println!("{}", "-".repeat(44));

    if deviations.is_empty() {
        println!("all benchmarks match the expected Table 1 outcome matrix");
        if gate_ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    } else {
        println!(
            "{} benchmark(s) deviate from the expected outcome matrix:",
            deviations.len()
        );
        for row in deviations {
            let errors: Vec<&String> = row
                .flux
                .errors
                .iter()
                .chain(row.baseline.errors.iter())
                .collect();
            if errors.is_empty() {
                println!(
                    "--- {}: verified although the matrix expects failure",
                    row.name
                );
            }
            for e in errors {
                println!("--- {}:\n{}", row.name, e);
            }
        }
        ExitCode::FAILURE
    }
}
