//! Regenerates Table 1 of "Flux: Liquid Types for Rust".
//!
//! For every benchmark the harness verifies the Flux flavour with the
//! refinement-type checker and the baseline flavour with the program-logic
//! verifier, then prints LOC / spec lines / annotation lines / verification
//! time for both, mirroring the layout of the paper's table, plus a
//! per-benchmark PASS/FAIL verdict against the expected-outcome matrix.
//!
//! The process exits nonzero when any `(benchmark, mode)` cell deviates from
//! `flux_suite::expect_verifies`, so CI can gate on the full matrix.
//!
//! With `--json [PATH]` the run is additionally written as machine-readable
//! JSON (default path `BENCH_table1.json`): per-benchmark wall-clock plus
//! the full query-engine statistics of both verifiers, so per-PR regressions
//! in queries issued (or prunes/reuse lost) are visible by diffing one file.
//! Before overwriting, the fresh run is *gated* against the committed
//! snapshot — totals **and** each benchmark individually, so a 3× `kmp`
//! regression can no longer hide behind a `heapsort` win.  The tolerances
//! (time factor, query factor, and the floors that keep sub-50 ms rows from
//! tripping on scheduler jitter) live in the committed snapshot's `gate`
//! object; `--no-gate` skips the comparison, e.g. when a regression is
//! intentional and the snapshot is being re-baselined.
//!
//! `--threads N` pins both parallel pools — the clause-level workers inside
//! each fixpoint solve and the function-level fan-out above them (the
//! default for each is the `FLUX_THREADS` environment variable, else the
//! machine's available parallelism); the run's effective parallelism is
//! recorded per benchmark in the JSON (`threads`, `fn_threads`,
//! `partitions`, `worker_queries`, `fn_times_ms`, `shard_contention`).
//!
//! `--audit [TIER]` runs both verifiers under the audit layer (`lint`, or
//! `full` when the operand is omitted): every obligation is sort- and
//! scope-checked, theory steps are certified, and converged fixpoint
//! solutions are independently re-validated — any violation panics.  The
//! audit counters (`lint_checks`, `certs_checked`, `revalidations`) appear
//! in the engine-statistics block and the JSON.  Audited runs are slower by
//! design, so the perf gate is automatically skipped.  The `FLUX_AUDIT`
//! environment variable sets the same tier without the flag (but does not
//! skip the gate on its own).
//!
//! `--deadline-ms N` gives every function's solve a wall-clock deadline of
//! `N` milliseconds and `--budget N` caps each solver step counter (SAT
//! decisions/conflicts, simplex pivots, branch-and-bound nodes, quantifier
//! instances, weakening iterations) at `N`.  Runs that exhaust a budget
//! degrade to an inconclusive `unk` outcome — never a false "verified" —
//! counted in the `unknowns` column of the engine-statistics block and the
//! JSON.  Budgeted runs are not comparable to the committed snapshot, so the
//! perf gate is automatically skipped.  The `FLUX_DEADLINE_MS` environment
//! variable sets a process-wide default deadline without the flag.

use flux_bench::daemon_client::DaemonClient;
use flux_bench::json::Value;
use std::process::ExitCode;
use std::time::Duration;

/// The figures the perf gate compares, for one benchmark or for the totals:
/// wall-clock (Flux + baseline) and validity queries (Flux + baseline).
struct GateFigures {
    time_s: f64,
    smt_queries: f64,
}

/// Reads the gate tolerances from a committed snapshot's `gate` object,
/// field by field (missing fields — e.g. an older snapshot — keep their
/// defaults).  The values read here are also what the refreshed snapshot
/// writes back out, so hand-tuned tolerances survive every refresh.
fn tolerances_from_snapshot(value: &Value) -> flux::GateTolerances {
    let defaults = flux::GateTolerances::default();
    let field = |key: &str, default: f64| {
        value
            .get("gate")
            .and_then(|g| g.get(key))
            .and_then(|v| v.as_f64())
            .unwrap_or(default)
    };
    flux::GateTolerances {
        time_factor: field("time_factor", defaults.time_factor),
        query_factor: field("query_factor", defaults.query_factor),
        min_time_s: field("min_time_s", defaults.min_time_s),
        min_queries: field("min_queries", defaults.min_queries),
    }
}

fn row_figures(row: &Value, name: &str) -> Result<GateFigures, String> {
    let mut time_s = 0.0;
    let mut smt_queries = 0.0;
    for side in ["flux", "baseline"] {
        let outcome = row
            .get(side)
            .ok_or_else(|| format!("snapshot row `{name}` lacks `{side}`"))?;
        time_s += outcome
            .get("time_s")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("snapshot row `{name}` lacks `{side}.time_s`"))?;
        smt_queries += outcome
            .get("smt_queries")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("snapshot row `{name}` lacks `{side}.smt_queries`"))?;
    }
    Ok(GateFigures {
        time_s,
        smt_queries,
    })
}

/// Per-benchmark figures of the committed snapshot, in file order.
fn snapshot_benchmarks(value: &Value) -> Result<Vec<(String, GateFigures)>, String> {
    let benchmarks = value
        .get("benchmarks")
        .and_then(|v| v.as_array())
        .ok_or("snapshot has no `benchmarks` array")?;
    benchmarks
        .iter()
        .map(|row| {
            let name = match row.get("name") {
                Some(Value::String(name)) => name.clone(),
                _ => return Err("snapshot row has no `name`".to_owned()),
            };
            let figures = row_figures(row, &name)?;
            Ok((name, figures))
        })
        .collect()
}

fn fresh_figures(row: &flux::TableRow) -> GateFigures {
    GateFigures {
        time_s: row.flux.time.as_secs_f64() + row.baseline.time.as_secs_f64(),
        smt_queries: (row.flux.stats.smt_queries + row.baseline.stats.smt_queries) as f64,
    }
}

/// Compares the fresh run against the committed snapshot: totals first,
/// then every benchmark individually against the snapshot's tolerances.
/// Returns `false` on any regression beyond the thresholds.
fn gate(rows: &[flux::TableRow], snapshot: &Value, tolerances: &flux::GateTolerances) -> bool {
    let committed_rows = match snapshot_benchmarks(snapshot) {
        Ok(rows) => rows,
        Err(e) => {
            // An unreadable snapshot cannot gate anything; report and pass
            // (the refreshed file written below re-baselines it).
            println!("perf gate: committed snapshot not comparable ({e})");
            return true;
        }
    };
    let fresh_rows: Vec<(&str, GateFigures)> = rows
        .iter()
        .filter(|r| !r.is_library)
        .map(|r| (r.name.as_str(), fresh_figures(r)))
        .collect();
    let mut ok = true;

    // Totals, as before: catches slow global drift spread thinly enough to
    // stay under every per-benchmark threshold.
    let committed_totals = GateFigures {
        time_s: committed_rows.iter().map(|(_, f)| f.time_s).sum(),
        smt_queries: committed_rows.iter().map(|(_, f)| f.smt_queries).sum(),
    };
    let fresh_totals = GateFigures {
        time_s: fresh_rows.iter().map(|(_, f)| f.time_s).sum(),
        smt_queries: fresh_rows.iter().map(|(_, f)| f.smt_queries).sum(),
    };
    println!(
        "perf gate: wall-clock {:.3}s vs committed {:.3}s (limit {:.3}s), \
         smt_queries {} vs committed {} (limit {})",
        fresh_totals.time_s,
        committed_totals.time_s,
        committed_totals.time_s * tolerances.time_factor,
        fresh_totals.smt_queries,
        committed_totals.smt_queries,
        committed_totals.smt_queries * tolerances.query_factor,
    );
    if fresh_totals.time_s > committed_totals.time_s * tolerances.time_factor {
        println!("perf gate FAILED: total wall-clock regressed beyond the time factor");
        ok = false;
    }
    if fresh_totals.smt_queries > committed_totals.smt_queries * tolerances.query_factor {
        println!("perf gate FAILED: total smt_queries regressed beyond the query factor");
        ok = false;
    }

    // Per benchmark: a regression on one row must fail even when wins
    // elsewhere keep the totals green.
    for (name, committed) in &committed_rows {
        let Some((_, fresh)) = fresh_rows.iter().find(|(n, _)| n == name) else {
            println!("perf gate FAILED: benchmark `{name}` is in the snapshot but did not run");
            ok = false;
            continue;
        };
        let time_limit = committed.time_s.max(tolerances.min_time_s) * tolerances.time_factor;
        let query_limit =
            committed.smt_queries.max(tolerances.min_queries) * tolerances.query_factor;
        if fresh.time_s > time_limit {
            println!(
                "perf gate FAILED: {name} wall-clock {:.3}s exceeds {:.3}s \
                 (committed {:.3}s x {})",
                fresh.time_s, time_limit, committed.time_s, tolerances.time_factor,
            );
            ok = false;
        }
        if fresh.smt_queries > query_limit {
            println!(
                "perf gate FAILED: {name} smt_queries {} exceeds {} (committed {} x {})",
                fresh.smt_queries, query_limit, committed.smt_queries, tolerances.query_factor,
            );
            ok = false;
        }
    }
    if ok {
        println!(
            "perf gate passed ({} benchmarks within tolerances)",
            committed_rows.len()
        );
    }
    ok
}

/// Routes the benchmark rows of Table 1 through a spawned `fluxd` daemon
/// (`--daemon`): library rows are still reported locally (they carry
/// metrics only), every benchmark × mode cell becomes a `verify` request.
/// The daemon is drained cleanly at the end; its final statistics frame is
/// echoed so warm-cache behaviour (`xbench_hits`) is visible in the log.
fn daemon_table1(
    deadline_ms: Option<u64>,
    steps: Option<u64>,
) -> Result<Vec<flux::TableRow>, String> {
    let mut client = DaemonClient::spawn(&[]).map_err(|e| format!("spawning fluxd: {e}"))?;
    let mut rows = flux::library_rows();
    for benchmark in flux::benchmarks() {
        let flux_outcome = daemon_verify(
            &mut client,
            benchmark.name,
            flux::Mode::Flux,
            deadline_ms,
            steps,
        )?;
        let baseline_outcome = daemon_verify(
            &mut client,
            benchmark.name,
            flux::Mode::Baseline,
            deadline_ms,
            steps,
        )?;
        rows.push(flux::TableRow {
            name: benchmark.name.to_owned(),
            is_library: benchmark.is_library,
            flux: flux_outcome,
            baseline: baseline_outcome,
        });
    }
    let final_stats = client
        .shutdown()
        .map_err(|e| format!("shutting down fluxd: {e}"))?;
    let counter = |key: &str| {
        final_stats
            .get(key)
            .and_then(Value::as_u64)
            .unwrap_or_default()
    };
    println!(
        "fluxd drained: {} admitted, {} verified, {} rejected, {} unknown, \
         {} errors, {} busy, {} worker respawns",
        counter("admitted"),
        counter("verified"),
        counter("rejected"),
        counter("unknown"),
        counter("errors"),
        counter("busy"),
        counter("worker_respawns"),
    );
    Ok(rows)
}

/// One benchmark × mode cell through the daemon, retrying bounded `busy`
/// rejections with the server-suggested back-off.
fn daemon_verify(
    client: &mut DaemonClient,
    program: &str,
    mode: flux::Mode,
    deadline_ms: Option<u64>,
    steps: Option<u64>,
) -> Result<flux::VerifyOutcome, String> {
    let mode_str = match mode {
        flux::Mode::Flux => "flux",
        flux::Mode::Baseline => "baseline",
    };
    for _ in 0..10 {
        let response = client
            .verify_program_opts(program, mode_str, deadline_ms, steps)
            .map_err(|e| format!("{program}/{mode_str}: {e}"))?;
        if response.get("result").and_then(Value::as_str) == Some("busy") {
            let back_off = response
                .get("retry_after_ms")
                .and_then(Value::as_u64)
                .unwrap_or(100);
            std::thread::sleep(Duration::from_millis(back_off));
            continue;
        }
        return Ok(outcome_from_response(mode, &response));
    }
    Err(format!("{program}/{mode_str}: daemon stayed busy"))
}

/// Rebuilds a [`flux::VerifyOutcome`] from a daemon response so the
/// familiar renderers (`render_table1`, `render_table1_json`) and the
/// expected-outcome matrix check run unchanged.  Statistics the response
/// does not carry stay zero.
fn outcome_from_response(mode: flux::Mode, response: &Value) -> flux::VerifyOutcome {
    let field = |key: &str| {
        response
            .get(key)
            .and_then(Value::as_u64)
            .unwrap_or_default() as usize
    };
    let stat = |key: &str| {
        response
            .get("stats")
            .and_then(|s| s.get(key))
            .and_then(Value::as_u64)
            .unwrap_or_default() as usize
    };
    let result = response
        .get("result")
        .and_then(Value::as_str)
        .unwrap_or("error");
    let mut errors: Vec<String> = response
        .get("errors")
        .and_then(Value::as_array)
        .map(|list| {
            list.iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    if result == "error" {
        let detail = response
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("daemon error");
        errors.push(format!("daemon: {detail}"));
    }
    // `unknowns` drives `ok_label`'s `unk` cell; an inconclusive daemon
    // verdict must not render as a hard `NO`.
    let unknowns = if result == "unknown" {
        stat("unknowns").max(1)
    } else {
        stat("unknowns")
    };
    flux::VerifyOutcome {
        mode,
        safe: result == "verified",
        errors,
        time: Duration::from_millis(
            response
                .get("time_ms")
                .and_then(Value::as_u64)
                .unwrap_or_default(),
        ),
        functions: field("functions"),
        loc: field("loc"),
        spec_lines: field("spec_lines"),
        annot_lines: field("annot_lines"),
        stats: flux::QueryStats {
            smt_queries: stat("smt_queries"),
            cache_hits: stat("cache_hits"),
            xbench_hits: stat("xbench_hits"),
            cache_misses: stat("cache_misses"),
            sessions: stat("sessions"),
            unknowns,
            evictions: stat("evictions"),
            budget_exhausted: stat("budget_exhausted"),
            ..Default::default()
        },
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mut json_path: Option<String> = None;
    let mut gate_enabled = true;
    let mut daemon_mode = false;
    let mut threads: Option<usize> = None;
    let mut audit: Option<flux_logic::AuditTier> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut budget_steps: Option<u64> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--audit" => {
                // The tier operand is optional: bare `--audit` means `full`.
                audit = Some(match args.peek().map(String::as_str) {
                    Some("lint") => {
                        args.next();
                        flux_logic::AuditTier::Lint
                    }
                    Some("full") => {
                        args.next();
                        flux_logic::AuditTier::Full
                    }
                    _ => flux_logic::AuditTier::Full,
                });
            }
            "--json" => {
                // The path operand is optional: a following flag (e.g.
                // `--json --no-gate`) must not be swallowed as a filename.
                json_path = Some(match args.peek() {
                    Some(next) if !next.starts_with("--") => {
                        args.next().expect("peeked operand exists")
                    }
                    _ => "BENCH_table1.json".to_owned(),
                });
            }
            "--daemon" => daemon_mode = true,
            "--no-gate" => gate_enabled = false,
            "--threads" => match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) => threads = Some(std::cmp::max(n, 1)),
                _ => {
                    eprintln!("--threads requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--deadline-ms" => match args.next().as_deref().map(str::parse) {
                Some(Ok(ms)) if ms > 0 => deadline_ms = Some(ms),
                _ => {
                    eprintln!("--deadline-ms requires a positive integer (milliseconds)");
                    return ExitCode::FAILURE;
                }
            },
            "--budget" => match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) if n > 0 => budget_steps = Some(n),
                _ => {
                    eprintln!("--budget requires a positive integer (solver steps)");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "unknown argument: {other} (supported: --json [PATH], --no-gate, \
                     --threads N, --audit [lint|full], --deadline-ms N, --budget N, \
                     --daemon)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let mut config = flux::VerifyConfig::default();
    if let Some(threads) = threads {
        // One flag pins both pools: the clause-level workers inside each
        // fixpoint solve and the function-level fan-out above them.
        config.check.fixpoint.threads = threads;
        config.check.fn_threads = threads;
    }
    if let Some(tier) = audit {
        config.check.fixpoint.smt.audit = tier;
        config.wp.smt.audit = tier;
        if gate_enabled && tier != flux_logic::AuditTier::Off {
            println!("perf gate: skipped (audited runs pay for their checking)");
            gate_enabled = false;
        }
    }
    if deadline_ms.is_some() || budget_steps.is_some() {
        let mut budget = budget_steps
            .map(flux_smt::ResourceBudget::uniform_steps)
            .unwrap_or(flux_smt::ResourceBudget::UNLIMITED);
        if let Some(ms) = deadline_ms {
            budget.timeout = Some(std::time::Duration::from_millis(ms));
        }
        config.check.fixpoint.smt.budget = budget;
        config.wp.smt.budget = budget;
        if gate_enabled {
            println!("perf gate: skipped (budgeted runs may degrade to unknown)");
            gate_enabled = false;
        }
    }
    if daemon_mode && gate_enabled {
        // Daemon-routed responses carry a reduced statistics block (no
        // per-worker queries, no pivot counts), so the rows are not
        // comparable to a committed in-process snapshot.
        println!("perf gate: skipped (daemon-routed runs report reduced statistics)");
        gate_enabled = false;
    }
    println!(
        "fixpoint worker threads: {} (function fan-out: {})",
        config.check.fixpoint.threads, config.check.fn_threads
    );
    println!("audit tier: {}", config.check.fixpoint.smt.audit);
    let rows = if daemon_mode {
        match daemon_table1(deadline_ms, budget_steps) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("--daemon failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        flux::run_table1(&config)
    };
    println!("{}", flux::render_table1(&rows));
    println!("incremental query engine (Flux mode | baseline):");
    println!("{}", flux::render_query_stats(&rows));
    let mut gate_ok = true;
    if let Some(path) = &json_path {
        // Parse the committed snapshot once: its `gate` tolerances both
        // drive the comparison and round-trip into the refreshed file, so
        // hand-tuned values survive the rewrite — even under `--no-gate`.
        // A missing file and a corrupt one are reported distinctly: an
        // unreadable snapshot that *exists* (a bad merge, say) should not
        // masquerade as a first run in the log.
        let committed = match std::fs::read_to_string(path) {
            Ok(raw) => match flux_bench::json::parse(&raw) {
                Ok(value) => Some(value),
                Err(e) => {
                    println!(
                        "perf gate: committed snapshot at {path} exists but is not \
                         parseable ({e}); gating skipped, snapshot will be re-baselined"
                    );
                    None
                }
            },
            Err(e) => {
                println!("perf gate: no committed snapshot at {path} ({e})");
                None
            }
        };
        let tolerances = committed
            .as_ref()
            .map(tolerances_from_snapshot)
            .unwrap_or_default();
        // Gate against the committed snapshot *before* overwriting it.
        if gate_enabled {
            if let Some(snapshot) = &committed {
                gate_ok = gate(&rows, snapshot, &tolerances);
            }
        }
        let json = flux::render_table1_json(&rows, &tolerances);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}:");
        println!("{json}");
    }

    // Per-benchmark verdicts against the expected-outcome matrix.
    println!(
        "{:<10} | {:>6} {:>9} | verdict",
        "benchmark", "flux", "baseline"
    );
    println!("{}", "-".repeat(44));
    let mut deviations: Vec<&flux::TableRow> = Vec::new();
    for row in rows.iter().filter(|r| !r.is_library) {
        let cells = [
            (flux_suite::Mode::Flux, row.flux.safe),
            (flux_suite::Mode::Baseline, row.baseline.safe),
        ];
        let ok = cells
            .iter()
            .all(|(mode, safe)| *safe == flux_suite::expect_verifies(&row.name, *mode));
        if !ok {
            deviations.push(row);
        }
        println!(
            "{:<10} | {:>6} {:>9} | {}",
            row.name,
            if row.flux.safe { "yes" } else { "NO" },
            if row.baseline.safe { "yes" } else { "NO" },
            if ok { "PASS" } else { "FAIL" },
        );
    }
    println!("{}", "-".repeat(44));

    if deviations.is_empty() {
        println!("all benchmarks match the expected Table 1 outcome matrix");
        if gate_ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    } else {
        println!(
            "{} benchmark(s) deviate from the expected outcome matrix:",
            deviations.len()
        );
        for row in deviations {
            let errors: Vec<&String> = row
                .flux
                .errors
                .iter()
                .chain(row.baseline.errors.iter())
                .collect();
            if errors.is_empty() {
                println!(
                    "--- {}: verified although the matrix expects failure",
                    row.name
                );
            }
            for e in errors {
                println!("--- {}:\n{}", row.name, e);
            }
        }
        ExitCode::FAILURE
    }
}
