//! Regenerates Table 1 of "Flux: Liquid Types for Rust".
//!
//! For every benchmark the harness verifies the Flux flavour with the
//! refinement-type checker and the baseline flavour with the program-logic
//! verifier, then prints LOC / spec lines / annotation lines / verification
//! time for both, mirroring the layout of the paper's table.

fn main() {
    let config = flux::VerifyConfig::default();
    let rows = flux::run_table1(&config);
    println!("{}", flux::render_table1(&rows));
    println!("incremental query engine (Flux mode | baseline):");
    println!("{}", flux::render_query_stats(&rows));
    let unsafe_rows: Vec<&str> = rows
        .iter()
        .filter(|r| !r.flux.safe || !r.baseline.safe)
        .map(|r| r.name.as_str())
        .collect();
    if unsafe_rows.is_empty() {
        println!("all benchmarks verified under both verifiers");
    } else {
        println!("NOT verified: {unsafe_rows:?}");
        for row in &rows {
            for e in row.flux.errors.iter().chain(row.baseline.errors.iter()) {
                println!("--- {}:\n{}", row.name, e);
            }
        }
    }
}
