//! Regenerates Table 1 of "Flux: Liquid Types for Rust".
//!
//! For every benchmark the harness verifies the Flux flavour with the
//! refinement-type checker and the baseline flavour with the program-logic
//! verifier, then prints LOC / spec lines / annotation lines / verification
//! time for both, mirroring the layout of the paper's table, plus a
//! per-benchmark PASS/FAIL verdict against the expected-outcome matrix.
//!
//! The process exits nonzero when any `(benchmark, mode)` cell deviates from
//! `flux_suite::expect_verifies`, so CI can gate on the full matrix.
//!
//! With `--json [PATH]` the run is additionally written as machine-readable
//! JSON (default path `BENCH_table1.json`): per-benchmark wall-clock plus
//! the full query-engine statistics of both verifiers, so per-PR regressions
//! in queries issued (or prunes/reuse lost) are visible by diffing one file.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut json_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                json_path = Some(
                    args.next()
                        .unwrap_or_else(|| "BENCH_table1.json".to_owned()),
                );
            }
            other => {
                eprintln!("unknown argument: {other} (supported: --json [PATH])");
                return ExitCode::FAILURE;
            }
        }
    }
    let config = flux::VerifyConfig::default();
    let rows = flux::run_table1(&config);
    println!("{}", flux::render_table1(&rows));
    println!("incremental query engine (Flux mode | baseline):");
    println!("{}", flux::render_query_stats(&rows));
    if let Some(path) = &json_path {
        let json = flux::render_table1_json(&rows);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}:");
        println!("{json}");
    }

    // Per-benchmark verdicts against the expected-outcome matrix.
    println!(
        "{:<10} | {:>6} {:>9} | verdict",
        "benchmark", "flux", "baseline"
    );
    println!("{}", "-".repeat(44));
    let mut deviations: Vec<&flux::TableRow> = Vec::new();
    for row in rows.iter().filter(|r| !r.is_library) {
        let cells = [
            (flux_suite::Mode::Flux, row.flux.safe),
            (flux_suite::Mode::Baseline, row.baseline.safe),
        ];
        let ok = cells
            .iter()
            .all(|(mode, safe)| *safe == flux_suite::expect_verifies(&row.name, *mode));
        if !ok {
            deviations.push(row);
        }
        println!(
            "{:<10} | {:>6} {:>9} | {}",
            row.name,
            if row.flux.safe { "yes" } else { "NO" },
            if row.baseline.safe { "yes" } else { "NO" },
            if ok { "PASS" } else { "FAIL" },
        );
    }
    println!("{}", "-".repeat(44));

    if deviations.is_empty() {
        println!("all benchmarks match the expected Table 1 outcome matrix");
        ExitCode::SUCCESS
    } else {
        println!(
            "{} benchmark(s) deviate from the expected outcome matrix:",
            deviations.len()
        );
        for row in deviations {
            let errors: Vec<&String> = row
                .flux
                .errors
                .iter()
                .chain(row.baseline.errors.iter())
                .collect();
            if errors.is_empty() {
                println!(
                    "--- {}: verified although the matrix expects failure",
                    row.name
                );
            }
            for e in errors {
                println!("--- {}:\n{}", row.name, e);
            }
        }
        ExitCode::FAILURE
    }
}
