//! A client for the `fluxd` verification daemon.
//!
//! Spawns the daemon as a child process and speaks its length-delimited
//! JSON protocol (`<decimal len>\n<payload>`, both directions) over the
//! child's stdin/stdout.  Used by `table1 --daemon` to route benchmark
//! verification through a warm daemon, and by the daemon's end-to-end and
//! soak tests.
//!
//! flux-bench sits *below* flux-daemon in the crate graph, so this module
//! re-implements the ~20 lines of client-side framing instead of importing
//! the server's `proto` module.

use crate::json::{parse, quote, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

/// Locates the `fluxd` binary: `$FLUXD_BIN` if set, else a sibling of the
/// current executable (`target/<profile>/fluxd`, walking up one directory
/// for test binaries living in `deps/`).
pub fn locate_fluxd() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("FLUXD_BIN") {
        let path = PathBuf::from(path);
        return path.is_file().then_some(path);
    }
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?.to_path_buf();
    for _ in 0..2 {
        let candidate = dir.join("fluxd");
        if candidate.is_file() {
            return Some(candidate);
        }
        dir = dir.parent()?.to_path_buf();
    }
    None
}

/// A live `fluxd` child process plus the client half of its protocol.
///
/// Dropping the client kills the child if it is still running; call
/// [`DaemonClient::shutdown`] for a clean drain.
pub struct DaemonClient {
    child: Child,
    // `Option` so `shutdown` can close the pipe (dropping it signals EOF)
    // while `Drop` still exists for the unclean path.
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
    next_id: u64,
}

impl DaemonClient {
    /// Spawns `fluxd` from `path` with the given extra environment.
    pub fn spawn_at(
        path: &std::path::Path,
        env: &[(&str, String)],
    ) -> std::io::Result<DaemonClient> {
        let mut command = Command::new(path);
        command.stdin(Stdio::piped()).stdout(Stdio::piped());
        for (key, value) in env {
            command.env(key, value);
        }
        let mut child = command.spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Ok(DaemonClient {
            child,
            stdin: Some(stdin),
            stdout,
            next_id: 1,
        })
    }

    /// Spawns `fluxd` found via [`locate_fluxd`].
    pub fn spawn(env: &[(&str, String)]) -> std::io::Result<DaemonClient> {
        let path = locate_fluxd().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "fluxd binary not found (set FLUXD_BIN or build flux-daemon)",
            )
        })?;
        DaemonClient::spawn_at(&path, env)
    }

    /// Sends one raw JSON payload as a frame.
    pub fn send(&mut self, payload: &str) -> std::io::Result<()> {
        let stdin = self.stdin.as_mut().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "daemon stdin already closed",
            )
        })?;
        write!(stdin, "{}\n{payload}", payload.len())?;
        stdin.flush()
    }

    /// Reads one response frame and parses it.
    pub fn read_response(&mut self) -> std::io::Result<Value> {
        let mut header = String::new();
        if self.stdout.read_line(&mut header)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed its stdout mid-conversation",
            ));
        }
        let len: usize = header.trim().parse().map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad frame header from daemon: {header:?}"),
            )
        })?;
        let mut payload = vec![0u8; len];
        self.stdout.read_exact(&mut payload)?;
        let text = String::from_utf8(payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        parse(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response from daemon: {e}"),
            )
        })
    }

    /// Sends one request and reads one response (the daemon answers every
    /// request exactly once, so with a single request in flight this pairs
    /// correctly).
    pub fn request(&mut self, payload: &str) -> std::io::Result<Value> {
        self.send(payload)?;
        self.read_response()
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Verifies a named suite benchmark; `mode` is `"flux"` or
    /// `"baseline"`.  Returns the raw response object (`result` may be
    /// `verified`, `rejected`, `unknown`, `busy` or `error`).
    pub fn verify_program(&mut self, program: &str, mode: &str) -> std::io::Result<Value> {
        self.verify_program_opts(program, mode, None, None)
    }

    /// Like [`DaemonClient::verify_program`] with a per-request deadline
    /// and uniform step cap (the daemon clamps the deadline to its own
    /// ceiling).
    pub fn verify_program_opts(
        &mut self,
        program: &str,
        mode: &str,
        deadline_ms: Option<u64>,
        steps: Option<u64>,
    ) -> std::io::Result<Value> {
        let id = self.fresh_id();
        let mut payload = format!(
            "{{\"id\":{id},\"method\":\"verify\",\"program\":{},\"mode\":{}",
            quote(program),
            quote(mode),
        );
        if let Some(ms) = deadline_ms {
            payload.push_str(&format!(",\"deadline_ms\":{ms}"));
        }
        if let Some(steps) = steps {
            payload.push_str(&format!(",\"steps\":{steps}"));
        }
        payload.push('}');
        self.request(&payload)
    }

    /// Verifies inline source text.
    pub fn verify_source(&mut self, source: &str, mode: &str) -> std::io::Result<Value> {
        let id = self.fresh_id();
        self.request(&format!(
            "{{\"id\":{id},\"method\":\"verify\",\"source\":{},\"mode\":{}}}",
            quote(source),
            quote(mode),
        ))
    }

    /// Fetches the daemon's statistics snapshot.
    pub fn status(&mut self) -> std::io::Result<Value> {
        let id = self.fresh_id();
        self.request(&format!("{{\"id\":{id},\"method\":\"status\"}}"))
    }

    /// Asks the daemon to drop its reclaimable warm state.
    pub fn reload(&mut self) -> std::io::Result<Value> {
        let id = self.fresh_id();
        self.request(&format!("{{\"id\":{id},\"method\":\"reload\"}}"))
    }

    /// Clean shutdown: drains the daemon, returns its final statistics
    /// frame and reaps the child process.
    pub fn shutdown(mut self) -> std::io::Result<Value> {
        let id = self.fresh_id();
        let final_stats = self.request(&format!("{{\"id\":{id},\"method\":\"shutdown\"}}"))?;
        drop(self.stdin.take());
        // Reap the child here; `Drop`'s kill on an already-reaped child is
        // a harmless no-op.
        let status = self.child.wait()?;
        if !status.success() {
            return Err(std::io::Error::other(format!("fluxd exited with {status}")));
        }
        Ok(final_stats)
    }
}

impl Drop for DaemonClient {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}
