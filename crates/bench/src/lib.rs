//! Benchmark harness for the Flux reproduction.
//!
//! The binary `table1` regenerates the paper's Table 1 (run with
//! `cargo run -p flux-bench --release --bin table1`); the Criterion benches
//! under `benches/` measure the same verification runs with statistical
//! rigour, plus two ablations (inference on/off, strong references on/off)
//! and SMT micro-benchmarks.
