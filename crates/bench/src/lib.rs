//! Benchmark harness for the Flux reproduction.
//!
//! The binary `table1` regenerates the paper's Table 1 (run with
//! `cargo run -p flux-bench --release --bin table1`); the benches under
//! `benches/` measure the same verification runs, plus two ablations
//! (inference on/off, strong references on/off) and SMT micro-benchmarks.
//!
//! The container this reproduction builds in has no access to crates.io, so
//! instead of Criterion the benches use the tiny self-contained timing
//! harness in [`harness`].  It mirrors the small slice of Criterion's API
//! the benches need (`benchmark_group`, `bench_function`, `Bencher::iter`)
//! so the bench sources read the same as they would with the real thing.

pub mod harness {
    //! A minimal Criterion-style benchmarking harness.

    pub use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// Top-level entry point, analogous to `criterion::Criterion`.
    #[derive(Default)]
    pub struct Criterion {}

    impl Criterion {
        /// Creates a harness.
        pub fn new() -> Criterion {
            Criterion::default()
        }

        /// Starts a named group of benchmarks.
        pub fn benchmark_group(&mut self, name: &str) -> Group {
            println!("== {name} ==");
            Group {
                name: name.to_owned(),
                sample_size: 10,
            }
        }
    }

    /// A group of related benchmarks sharing a sample size.
    pub struct Group {
        name: String,
        sample_size: usize,
    }

    impl Group {
        /// Sets the number of timed samples per benchmark.
        pub fn sample_size(&mut self, n: usize) -> &mut Group {
            self.sample_size = n.max(1);
            self
        }

        /// Runs one benchmark: `routine` receives a [`Bencher`] and must
        /// call [`Bencher::iter`].
        pub fn bench_function(
            &mut self,
            id: impl std::fmt::Display,
            mut routine: impl FnMut(&mut Bencher),
        ) -> &mut Group {
            let mut bencher = Bencher {
                samples: Vec::with_capacity(self.sample_size),
                sample_size: self.sample_size,
            };
            routine(&mut bencher);
            let stats = summarize(&bencher.samples);
            println!(
                "{}/{id:<28} min {:>12?}  mean {:>12?}  max {:>12?}  ({} samples)",
                self.name,
                stats.min,
                stats.mean,
                stats.max,
                bencher.samples.len()
            );
            self
        }

        /// Ends the group (kept for API parity; printing is immediate).
        pub fn finish(&mut self) {}
    }

    /// Passed to benchmark routines; times the closure given to `iter`.
    pub struct Bencher {
        samples: Vec<Duration>,
        sample_size: usize,
    }

    impl Bencher {
        /// Times `f`, once per sample, after one untimed warm-up run.
        pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
            black_box(f()); // warm-up
            for _ in 0..self.sample_size {
                let start = Instant::now();
                black_box(f());
                self.samples.push(start.elapsed());
            }
        }
    }

    struct Summary {
        min: Duration,
        mean: Duration,
        max: Duration,
    }

    fn summarize(samples: &[Duration]) -> Summary {
        if samples.is_empty() {
            return Summary {
                min: Duration::ZERO,
                mean: Duration::ZERO,
                max: Duration::ZERO,
            };
        }
        let total: Duration = samples.iter().sum();
        Summary {
            min: *samples.iter().min().unwrap(),
            mean: total / samples.len() as u32,
            max: *samples.iter().max().unwrap(),
        }
    }
}
