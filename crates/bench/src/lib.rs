//! Benchmark harness for the Flux reproduction.
//!
//! The binary `table1` regenerates the paper's Table 1 (run with
//! `cargo run -p flux-bench --release --bin table1`); the benches under
//! `benches/` measure the same verification runs, plus two ablations
//! (inference on/off, strong references on/off) and SMT micro-benchmarks.
//!
//! The container this reproduction builds in has no access to crates.io, so
//! instead of Criterion the benches use the tiny self-contained timing
//! harness in [`harness`].  It mirrors the small slice of Criterion's API
//! the benches need (`benchmark_group`, `bench_function`, `Bencher::iter`)
//! so the bench sources read the same as they would with the real thing.

pub mod daemon_client;

pub mod json {
    //! A minimal JSON reader/writer shared by the perf regression gate and
    //! the `fluxd` daemon protocol.
    //!
    //! `table1 --json` compares the fresh run against the *committed*
    //! `BENCH_table1.json`, and `flux-daemon` frames its requests and
    //! responses in the same grammar; this module parses and renders JSON
    //! values without external crates (no serde) — objects, arrays, strings
    //! with the standard escape sequences, numbers, booleans and null.

    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// A boolean.
        Bool(bool),
        /// Any number (parsed as `f64`; the gate only compares magnitudes).
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object.
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        /// Member lookup on objects.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(map) => map.get(key),
                _ => None,
            }
        }

        /// The numeric value, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The text, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The boolean, if this is one.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The numeric value as a `u64`, if this is a non-negative integer
        /// number (request ids, millisecond counts, step budgets).
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }
    }

    /// Renders `s` as a JSON string literal, quotes included, escaping the
    /// two mandatory characters plus controls — enough for the daemon
    /// protocol to carry arbitrary program sources and error messages.
    pub fn quote(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Parses `input` as a single JSON value (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Value, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {pos}", b as char))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut map = BTreeMap::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, b':')?;
                    map.insert(key, parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                    }
                }
            }
            Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
            Some(b't') if bytes[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if bytes[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if bytes[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Value::Null)
            }
            Some(_) => {
                let start = *pos;
                while *pos < bytes.len()
                    && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *pos += 1;
                }
                let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
                text.parse()
                    .map(Value::Number)
                    .map_err(|_| format!("malformed number `{text}` at byte {start}"))
            }
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = Vec::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    *pos += 1;
                    return String::from_utf8(out)
                        .map_err(|_| "invalid utf-8 in string".to_owned());
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0c),
                        Some(b'n') => out.push(b'\n'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'u') => {
                            let unit = parse_hex4(bytes, *pos + 1)?;
                            *pos += 4;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` + a low surrogate.
                            let scalar = if (0xD800..0xDC00).contains(&unit) {
                                if bytes.get(*pos + 1) != Some(&b'\\')
                                    || bytes.get(*pos + 2) != Some(&b'u')
                                {
                                    return Err(format!("lone high surrogate at byte {pos}"));
                                }
                                let low = parse_hex4(bytes, *pos + 3)?;
                                *pos += 6;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(format!("invalid low surrogate at byte {pos}"));
                                }
                                0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(format!("lone low surrogate at byte {pos}"));
                            } else {
                                unit
                            };
                            let c = char::from_u32(scalar)
                                .ok_or_else(|| format!("invalid scalar at byte {pos}"))?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                        _ => return Err(format!("unsupported escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                Some(&b) => {
                    out.push(b);
                    *pos += 1;
                }
            }
        }
    }

    /// Parses the four hex digits of a `\uXXXX` escape starting at `at`.
    fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
        let digits = bytes
            .get(at..at + 4)
            .ok_or_else(|| format!("truncated \\u escape at byte {at}"))?;
        let text = std::str::from_utf8(digits).map_err(|_| "invalid utf-8 in escape".to_owned())?;
        u32::from_str_radix(text, 16).map_err(|_| format!("malformed \\u escape at byte {at}"))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn parses_the_bench_snapshot_shape() {
            let input = r#"{
                "benchmarks": [
                    { "name": "bsearch", "flux": { "safe": true, "time_s": 0.01, "smt_queries": 45 },
                      "baseline": { "safe": true, "time_s": 0.001, "smt_queries": 8 } }
                ],
                "totals": { "flux_time_s": 0.01, "baseline_time_s": 0.001 }
            }"#;
            let value = parse(input).expect("snapshot shape parses");
            let totals = value.get("totals").expect("totals present");
            assert_eq!(totals.get("flux_time_s").unwrap().as_f64(), Some(0.01));
            let benchmarks = value.get("benchmarks").unwrap().as_array().unwrap();
            assert_eq!(
                benchmarks[0]
                    .get("flux")
                    .unwrap()
                    .get("smt_queries")
                    .unwrap()
                    .as_f64(),
                Some(45.0)
            );
            assert_eq!(
                benchmarks[0].get("name").unwrap(),
                &Value::String("bsearch".to_owned())
            );
        }

        #[test]
        fn rejects_malformed_input() {
            assert!(parse("{").is_err());
            assert!(parse("[1, 2,]").is_err());
            assert!(parse("12x").is_err());
            assert!(parse("{\"a\": 1} trailing").is_err());
        }

        #[test]
        fn parses_scalars() {
            assert_eq!(parse("true").unwrap(), Value::Bool(true));
            assert_eq!(parse("null").unwrap(), Value::Null);
            assert_eq!(parse("-3.25").unwrap().as_f64(), Some(-3.25));
            assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        }

        #[test]
        fn string_escapes_round_trip_through_quote() {
            // The daemon protocol carries whole program sources: quotes,
            // backslashes, newlines, tabs and control characters all have
            // to survive a quote → parse round trip byte-for-byte.
            let source = "fn f() {\n\t\"quoted\\path\"\r}\u{1}\u{7f}héllo\u{10348}";
            let encoded = quote(source);
            assert_eq!(parse(&encoded).unwrap().as_str(), Some(source));
        }

        #[test]
        fn parses_standard_escapes_and_surrogate_pairs() {
            assert_eq!(
                parse(r#""a\"b\\c\/d\b\f\n\r\t""#).unwrap().as_str(),
                Some("a\"b\\c/d\u{8}\u{c}\n\r\t")
            );
            assert_eq!(parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
            // U+10348 as the escaped surrogate pair D800 DF48, and as
            // literal UTF-8; both forms must parse to the same string.
            assert_eq!(parse(r#""𐍈""#).unwrap().as_str(), Some("\u{10348}"));
            assert_eq!(parse(r#""𐍈""#).unwrap().as_str(), Some("\u{10348}"));
            assert!(parse(r#""\ud800""#).is_err(), "lone high surrogate");
            assert!(parse(r#""\udf48""#).is_err(), "lone low surrogate");
            assert!(parse(r#""\ux""#).is_err(), "truncated \\u escape");
            assert!(parse(r#""\q""#).is_err(), "unknown escape");
            assert!(parse(r#""unterminated"#).is_err());
        }

        #[test]
        fn typed_accessors() {
            assert_eq!(parse("7").unwrap().as_u64(), Some(7));
            assert_eq!(parse("7.5").unwrap().as_u64(), None);
            assert_eq!(parse("-7").unwrap().as_u64(), None);
            assert_eq!(parse("true").unwrap().as_bool(), Some(true));
            assert_eq!(parse("\"x\"").unwrap().as_bool(), None);
        }
    }
}

pub mod harness {
    //! A minimal Criterion-style benchmarking harness.

    pub use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// Top-level entry point, analogous to `criterion::Criterion`.
    #[derive(Default)]
    pub struct Criterion {}

    impl Criterion {
        /// Creates a harness.
        pub fn new() -> Criterion {
            Criterion::default()
        }

        /// Starts a named group of benchmarks.
        pub fn benchmark_group(&mut self, name: &str) -> Group {
            println!("== {name} ==");
            Group {
                name: name.to_owned(),
                sample_size: 10,
            }
        }
    }

    /// A group of related benchmarks sharing a sample size.
    pub struct Group {
        name: String,
        sample_size: usize,
    }

    impl Group {
        /// Sets the number of timed samples per benchmark.
        pub fn sample_size(&mut self, n: usize) -> &mut Group {
            self.sample_size = n.max(1);
            self
        }

        /// Runs one benchmark: `routine` receives a [`Bencher`] and must
        /// call [`Bencher::iter`].
        pub fn bench_function(
            &mut self,
            id: impl std::fmt::Display,
            mut routine: impl FnMut(&mut Bencher),
        ) -> &mut Group {
            let mut bencher = Bencher {
                samples: Vec::with_capacity(self.sample_size),
                sample_size: self.sample_size,
            };
            routine(&mut bencher);
            let stats = summarize(&bencher.samples);
            println!(
                "{}/{id:<28} min {:>12?}  mean {:>12?}  max {:>12?}  ({} samples)",
                self.name,
                stats.min,
                stats.mean,
                stats.max,
                bencher.samples.len()
            );
            self
        }

        /// Ends the group (kept for API parity; printing is immediate).
        pub fn finish(&mut self) {}
    }

    /// Passed to benchmark routines; times the closure given to `iter`.
    pub struct Bencher {
        samples: Vec<Duration>,
        sample_size: usize,
    }

    impl Bencher {
        /// Times `f`, once per sample, after one untimed warm-up run.
        pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
            black_box(f()); // warm-up
            for _ in 0..self.sample_size {
                let start = Instant::now();
                black_box(f());
                self.samples.push(start.elapsed());
            }
        }
    }

    struct Summary {
        min: Duration,
        mean: Duration,
        max: Duration,
    }

    fn summarize(samples: &[Duration]) -> Summary {
        if samples.is_empty() {
            return Summary {
                min: Duration::ZERO,
                mean: Duration::ZERO,
                max: Duration::ZERO,
            };
        }
        let total: Duration = samples.iter().sum();
        Summary {
            min: *samples.iter().min().unwrap(),
            mean: total / samples.len() as u32,
            max: *samples.iter().max().unwrap(),
        }
    }
}
