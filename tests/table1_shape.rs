//! Integration tests for the evaluation claims (the *shape* of Table 1):
//! Flux flavours carry zero loop-invariant annotations, the baseline carries
//! a substantial annotation burden, and the benchmarks that both verifiers
//! handle show Flux at least as fast as the baseline on the quantifier-heavy
//! workloads.

use flux::{run_benchmark, verify_source, Mode, VerifyConfig};

#[test]
fn flux_flavours_never_need_loop_invariants() {
    for b in flux::benchmarks() {
        assert_eq!(
            flux_syntax::SourceMetrics::of_source(b.flux_src).annot_lines,
            0,
            "{} should need no invariant! lines under Flux",
            b.name
        );
    }
}

#[test]
fn baseline_annotation_overhead_is_substantial() {
    let mut total_loc = 0usize;
    let mut total_annot = 0usize;
    for b in flux::benchmarks() {
        let m = b.baseline_metrics();
        total_loc += m.loc;
        total_annot += m.annot_lines;
    }
    let percent = total_annot * 100 / total_loc;
    assert!(
        (5..=40).contains(&percent),
        "baseline annotation overhead should be roughly the paper's ~9-24% band, got {percent}%"
    );
}

#[test]
fn dotprod_and_kmeans_verify_under_flux_and_baseline() {
    let config = VerifyConfig::default();
    for name in ["dotprod", "kmeans", "bsearch"] {
        let row = run_benchmark(&flux::benchmark(name).unwrap(), &config);
        assert!(row.flux.safe, "{name} flux flavour: {:?}", row.flux.errors);
        assert!(
            row.baseline.safe,
            "{name} baseline flavour: {:?}",
            row.baseline.errors
        );
    }
}

#[test]
fn quantified_baseline_pays_an_instantiation_burden_flux_never_does() {
    // E3: the paper's fundamental asymmetry is that the program-logic
    // baseline must discharge universally quantified container axioms by
    // instantiation, while Flux VCs are quantifier-free by construction.
    // (Wall-clock on any single benchmark is too substrate-dependent to
    // assert: goal-directed relevance filtering prunes fft's frame axioms
    // entirely, so the content-invariant-carrying kmp is the witness.)
    // The quantified baseline run builds very deep formulas, so give it a
    // generous stack (unoptimised builds have large frames).
    let handle = std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(|| {
            let config = VerifyConfig::default();
            let b = flux::benchmark("kmp").unwrap();
            let flux_outcome = verify_source(b.flux_src, Mode::Flux, &config).unwrap();
            let baseline_outcome = verify_source(b.baseline_src, Mode::Baseline, &config).unwrap();
            assert!(
                flux_outcome.safe,
                "kmp flux flavour: {:?}",
                flux_outcome.errors
            );
            assert!(
                baseline_outcome.safe,
                "kmp baseline flavour: {:?}",
                baseline_outcome.errors
            );
            assert_eq!(
                flux_outcome.stats.quant_instances, 0,
                "Flux VCs must stay quantifier-free"
            );
            assert!(
                baseline_outcome.stats.quant_instances > 0,
                "the baseline should have instantiated container axioms on kmp"
            );
        })
        .expect("spawn verification thread");
    handle.join().expect("kmp comparison thread panicked");
}
