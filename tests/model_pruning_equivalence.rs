//! Acceptance tests for counter-model-guided weakening and the persistent
//! CDCL core: with both enabled (the default) the verifier must produce
//! exactly the same verdicts and blamed obligations as the historical
//! engine (no pruning, one-shot pipeline per query) across the entire
//! benchmark corpus — while measurably pruning candidates, reusing SAT
//! state, and issuing fewer SMT queries.
//!
//! The solution-level counterpart (identical inferred invariants, not just
//! identical verdicts) is pinned by
//! `flux_fixpoint::solve::tests::model_pruning_preserves_the_fixpoint_with_fewer_queries`.

use flux::{verify_source, FixConfig, Mode, VerifyConfig};

/// The engine as it was before counter-model pruning: per-candidate
/// weakening queries through the one-shot pipeline.
fn legacy_config() -> VerifyConfig {
    let mut config = VerifyConfig::default();
    config.check.fixpoint = FixConfig {
        incremental: false,
        model_pruning: false,
        ..FixConfig::default()
    };
    config
}

#[test]
fn pruning_and_persistent_core_change_no_verdict_on_the_corpus() {
    let current = VerifyConfig::default();
    let legacy = legacy_config();
    let mut total_prunes = 0;
    let mut total_sat_reuse = 0;
    let mut current_queries = 0;
    let mut legacy_queries = 0;
    for b in flux::benchmarks() {
        let new = verify_source(b.flux_src, Mode::Flux, &current)
            .unwrap_or_else(|e| panic!("{}: frontend error {e}", b.name));
        let old = verify_source(b.flux_src, Mode::Flux, &legacy)
            .unwrap_or_else(|e| panic!("{}: frontend error {e}", b.name));
        assert_eq!(
            new.safe, old.safe,
            "{}: pruning/persistent-core engine and legacy engine disagree \
             (new errors: {:?}, legacy errors: {:?})",
            b.name, new.errors, old.errors
        );
        assert_eq!(
            new.errors, old.errors,
            "{}: verdicts agree but blamed obligations differ",
            b.name
        );
        total_prunes += new.stats.model_prunes;
        total_sat_reuse += new.stats.sat_reuse;
        current_queries += new.stats.smt_queries;
        legacy_queries += old.stats.smt_queries;
        // The legacy path must not report any of the new machinery.
        assert_eq!(old.stats.model_prunes, 0, "{}", b.name);
        assert_eq!(old.stats.sat_reuse, 0, "{}", b.name);
    }
    assert!(
        total_prunes > 0,
        "the corpus must exercise counter-model pruning"
    );
    assert!(
        total_sat_reuse > 0,
        "the corpus must exercise persistent-core reuse"
    );
    assert!(
        current_queries < legacy_queries,
        "pruning must reduce SMT queries corpus-wide: {current_queries} vs {legacy_queries}"
    );
}

#[test]
fn baseline_verdicts_are_unaffected_by_fixpoint_toggles() {
    // The baseline verifier shares the SMT engine (sessions, persistent
    // core) but not the fixpoint loop; its verdicts must be stable too.
    let current = VerifyConfig::default();
    let legacy = legacy_config();
    for b in flux::benchmarks() {
        let new = verify_source(b.baseline_src, Mode::Baseline, &current)
            .unwrap_or_else(|e| panic!("{}: frontend error {e}", b.name));
        let old = verify_source(b.baseline_src, Mode::Baseline, &legacy)
            .unwrap_or_else(|e| panic!("{}: frontend error {e}", b.name));
        assert_eq!(new.safe, old.safe, "{}", b.name);
        assert_eq!(new.errors, old.errors, "{}", b.name);
    }
}
