//! Acceptance tests for the parallel solving pipeline — both pools: the
//! clause-level weakening scheduler inside each fixpoint solve, and the
//! function-level fan-out above it.  Solving with any combination of
//! worker-thread counts must be observationally identical to the
//! sequential engine — same Safe/Unsafe verdicts and blamed obligations
//! across the whole benchmark corpus, and bit-identical inferred
//! `Solution`s for every function's constraint system — while the merged
//! per-worker statistics still account for every query and report each
//! pool's width distinctly.

use flux::{verify_source, FixConfig, Mode, VerifyConfig};
use flux_fixpoint::{FixResult, FixpointSolver};
use flux_logic::SortCtx;

/// The shipped configuration with a pinned worker-thread cap.  The
/// function-level fan-out is pinned to 1 so each sweep varies exactly one
/// pool.
fn with_threads(threads: usize) -> VerifyConfig {
    let mut config = VerifyConfig::default();
    config.check.fixpoint.threads = threads;
    config.check.fn_threads = 1;
    config
}

/// A configuration pinning both pools: `fn_threads` functions checked
/// concurrently, each solve using `clause_threads` weakening workers.
fn with_pools(fn_threads: usize, clause_threads: usize) -> VerifyConfig {
    let mut config = with_threads(clause_threads);
    config.check.fn_threads = fn_threads;
    config
}

/// A hermetic fixpoint configuration (per-solver cache) with a pinned
/// worker-thread cap, for the solution-level comparisons: isolation from
/// the process-global cache keeps a failure attributable to the scheduler
/// rather than to whatever other tests already proved.
fn hermetic_fixpoint(threads: usize) -> FixConfig {
    FixConfig {
        global_cache: false,
        threads,
        ..FixConfig::default()
    }
}

#[test]
fn corpus_verdicts_are_identical_across_thread_counts() {
    let sequential = with_threads(1);
    for b in flux::benchmarks() {
        let reference = verify_source(b.flux_src, Mode::Flux, &sequential)
            .unwrap_or_else(|e| panic!("{}: frontend error {e}", b.name));
        for threads in [2, 8] {
            let parallel = verify_source(b.flux_src, Mode::Flux, &with_threads(threads))
                .unwrap_or_else(|e| panic!("{}: frontend error {e}", b.name));
            assert_eq!(
                parallel.safe, reference.safe,
                "{} at threads={threads}: parallel and sequential engines disagree \
                 (parallel errors: {:?}, sequential errors: {:?})",
                b.name, parallel.errors, reference.errors
            );
            assert_eq!(
                parallel.errors, reference.errors,
                "{} at threads={threads}: verdicts agree but blamed obligations differ",
                b.name
            );
            assert_eq!(
                parallel.stats.threads, threads,
                "{}: the configured thread cap must be reported",
                b.name
            );
        }
    }
}

/// The inferred invariants themselves — not just the verdicts — must be
/// bit-identical at every thread count, for every function of every
/// benchmark: the weakening fixpoint is a function of the constraint
/// system, not of the schedule.
#[test]
fn corpus_solutions_are_identical_across_thread_counts() {
    for b in flux::benchmarks() {
        let program = flux_syntax::parse_program(b.flux_src)
            .unwrap_or_else(|e| panic!("{}: parse error {e:?}", b.name));
        let resolved = flux_ir::ResolvedProgram::resolve(&program)
            .unwrap_or_else(|e| panic!("{}: resolve error {e:?}", b.name));
        for func in resolved.iter() {
            if func.def.trusted {
                continue;
            }
            let generator = flux_check::checker::Generator::new(&resolved);
            let gen = generator
                .gen_function(&func.def.name)
                .unwrap_or_else(|e| panic!("{}/{}: genexpr error {e:?}", b.name, func.def.name));
            let mut sequential = FixpointSolver::new(hermetic_fixpoint(1));
            let reference = sequential.solve(&gen.constraint, &gen.kvars, &SortCtx::new());
            for threads in [2, 8] {
                let mut parallel = FixpointSolver::new(hermetic_fixpoint(threads));
                let result = parallel.solve(&gen.constraint, &gen.kvars, &SortCtx::new());
                assert_eq!(
                    result, reference,
                    "{}/{} at threads={threads}: parallel fixpoint (solution or blame) \
                     diverged from sequential",
                    b.name, func.def.name
                );
            }
            // The reference run's safety verdict must match what end-to-end
            // checking reports for this function (sanity that the harness
            // exercised the real constraint system).
            if matches!(reference, FixResult::Unsafe { .. }) {
                let outcome = verify_source(b.flux_src, Mode::Flux, &with_threads(1)).unwrap();
                assert!(
                    !outcome.safe,
                    "{}/{}: fixpoint says unsafe but the corpus verdict is safe",
                    b.name, func.def.name
                );
            }
        }
    }
}

/// Merged per-worker statistics must account for the whole workload:
/// worker-slot query counts sum to the engine total, hits and misses
/// account for every query, and the hit classifications never exceed the
/// hits — at every thread count, across the whole corpus.
#[test]
fn parallel_stats_merge_is_lossless_on_the_corpus() {
    // Sweep both pools, including combinations where they coexist: the
    // merge must stay lossless whether queries come from one solver's
    // worker slots or from eight concurrent per-function solvers.
    for (fn_threads, threads) in [(1, 1), (1, 2), (1, 8), (2, 2), (8, 1)] {
        let config = with_pools(fn_threads, threads);
        for b in flux::benchmarks() {
            let outcome = verify_source(b.flux_src, Mode::Flux, &config)
                .unwrap_or_else(|e| panic!("{}: frontend error {e}", b.name));
            let s = &outcome.stats;
            assert_eq!(
                s.worker_queries.iter().sum::<usize>(),
                s.smt_queries,
                "{} at fn={fn_threads}/cl={threads}: per-worker query counts must sum                  to the total (per-function vectors must never interleave)",
                b.name
            );
            assert!(
                // One slot vector per function under fan-out, each at most
                // `threads` wide.
                s.worker_queries.len() <= threads * s.fn_times_ms.len().max(1),
                "{} at fn={fn_threads}/cl={threads}: more worker slots ({}) than workers",
                b.name,
                s.worker_queries.len()
            );
            assert_eq!(
                s.cache_hits + s.cache_misses,
                s.smt_queries,
                "{} at fn={fn_threads}/cl={threads}: hits + misses must account for                  every query",
                b.name
            );
            assert!(
                s.cross_fn_hits + s.xbench_hits <= s.cache_hits,
                "{} at fn={fn_threads}/cl={threads}: hit classifications exceed total hits",
                b.name
            );
            assert!(
                s.partitions > 0,
                "{} at fn={fn_threads}/cl={threads}: a verified benchmark must report                  its κ-partitions",
                b.name
            );
            // Each pool's width is reported distinctly (regression: a
            // single max-merged figure let the fan-out width masquerade as
            // clause-level parallelism once both pools coexisted).
            assert_eq!(
                s.threads, threads,
                "{} at fn={fn_threads}/cl={threads}: the clause pool width must not                  absorb the function fan-out width",
                b.name
            );
            assert!(
                s.fn_threads >= 1 && s.fn_threads <= fn_threads,
                "{} at fn={fn_threads}/cl={threads}: reported fan-out width {} out of                  range",
                b.name,
                s.fn_threads
            );
            assert!(
                !s.fn_times_ms.is_empty(),
                "{} at fn={fn_threads}/cl={threads}: per-function wall-clock vector                  must have one slot per checked function",
                b.name
            );
        }
    }
}

/// Function-level fan-out equivalence: the whole corpus must verify
/// identically — verdicts *and* blamed obligations, in the same order —
/// when functions are checked concurrently, at every pool-width
/// combination, and the per-function time vector keeps one slot per
/// function regardless of schedule.
#[test]
fn corpus_verdicts_are_identical_across_function_fanout_widths() {
    let sequential = with_threads(1);
    for b in flux::benchmarks() {
        let reference = verify_source(b.flux_src, Mode::Flux, &sequential)
            .unwrap_or_else(|e| panic!("{}: frontend error {e}", b.name));
        for (fn_threads, clause_threads) in [(2, 1), (8, 1), (2, 2), (8, 2)] {
            let config = with_pools(fn_threads, clause_threads);
            let parallel = verify_source(b.flux_src, Mode::Flux, &config)
                .unwrap_or_else(|e| panic!("{}: frontend error {e}", b.name));
            assert_eq!(
                parallel.safe, reference.safe,
                "{} at fn={fn_threads}/cl={clause_threads}: fan-out and sequential                  engines disagree (parallel errors: {:?}, sequential errors: {:?})",
                b.name, parallel.errors, reference.errors
            );
            assert_eq!(
                parallel.errors, reference.errors,
                "{} at fn={fn_threads}/cl={clause_threads}: verdicts agree but blamed                  obligations differ or are reordered (the merge must follow program                  order, not completion order)",
                b.name
            );
            assert_eq!(
                parallel.stats.fn_times_ms.len(),
                reference.stats.fn_times_ms.len(),
                "{} at fn={fn_threads}/cl={clause_threads}: one wall-clock slot per                  checked function, regardless of schedule",
                b.name
            );
        }
    }
}
