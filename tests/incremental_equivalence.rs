//! Acceptance tests for the incremental query engine: session-based solving
//! plus the validity cache must produce identical Safe/Unsafe verdicts to
//! one-shot solving across the entire benchmark corpus, and the Table 1
//! workload must actually exercise the cache.

use flux::{verify_source, FixConfig, Mode, VerifyConfig};

/// Counter-model pruning is disabled on both sides of this test: the
/// session and one-shot pipelines may produce different counter-models (and
/// hence skip different per-candidate queries), and this test pins the
/// *query-for-query* equivalence of the two engines.  Verdict equivalence
/// with pruning enabled is covered by `model_pruning_equivalence.rs`.  The
/// process-global verdict cache is disabled too, so whatever other tests in
/// this binary have already proved cannot blur the comparison.
fn no_pruning(incremental: bool) -> VerifyConfig {
    let mut config = VerifyConfig::default();
    config.check.fixpoint = FixConfig {
        incremental,
        model_pruning: false,
        global_cache: false,
        ..FixConfig::default()
    };
    config
}

#[test]
fn incremental_and_one_shot_agree_on_the_whole_corpus() {
    let incremental = no_pruning(true);
    let one_shot = no_pruning(false);
    for b in flux::benchmarks() {
        let inc = verify_source(b.flux_src, Mode::Flux, &incremental)
            .unwrap_or_else(|e| panic!("{}: frontend error {e}", b.name));
        let os = verify_source(b.flux_src, Mode::Flux, &one_shot)
            .unwrap_or_else(|e| panic!("{}: frontend error {e}", b.name));
        assert_eq!(
            inc.safe, os.safe,
            "{}: incremental engine and one-shot solving disagree (incremental errors: {:?}, \
             one-shot errors: {:?})",
            b.name, inc.errors, os.errors
        );
        assert_eq!(
            inc.errors, os.errors,
            "{}: verdicts agree but blamed obligations differ",
            b.name
        );
        // Both engines answer exactly the same questions.
        assert_eq!(
            inc.stats.smt_queries, os.stats.smt_queries,
            "{}: engines asked different numbers of queries",
            b.name
        );
        assert_eq!(
            inc.stats.cache_hits + inc.stats.cache_misses,
            inc.stats.smt_queries,
            "{}: hits + misses must account for every query",
            b.name
        );
        // One-shot mode must not touch the cache or open clause sessions.
        assert_eq!(os.stats.cache_hits, 0, "{}", b.name);
        assert_eq!(os.stats.sessions, 0, "{}", b.name);
    }
}

#[test]
fn table1_workload_reports_cache_hits_and_sessions() {
    let config = VerifyConfig::default();
    let mut total_hits = 0;
    let mut total_sessions = 0;
    let mut total_queries = 0;
    for b in flux::benchmarks() {
        let outcome = verify_source(b.flux_src, Mode::Flux, &config).unwrap();
        total_hits += outcome.stats.cache_hits;
        total_sessions += outcome.stats.sessions;
        total_queries += outcome.stats.smt_queries;
    }
    assert!(
        total_queries > 0,
        "corpus issued no validity queries at all"
    );
    assert!(
        total_hits > 0,
        "expected a nonzero cache-hit count on the table1 workload \
         ({total_queries} queries, {total_sessions} sessions)"
    );
    assert!(
        total_sessions > 0,
        "expected the weakening loop to open solver sessions"
    );
}
