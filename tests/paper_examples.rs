//! Integration tests spanning the whole pipeline: the worked examples from
//! §2 of the paper, checked through the public `flux` API.

use flux::{verify_source, Mode, VerifyConfig};

fn flux_safe(src: &str) -> bool {
    verify_source(src, Mode::Flux, &VerifyConfig::default())
        .expect("program should be well-formed")
        .safe
}

#[test]
fn figure1_examples_verify() {
    assert!(flux_safe(
        r#"
        #[flux::sig(fn(i32[@n]) -> bool[n > 0])]
        fn is_pos(n: i32) -> bool {
            if n > 0 { true } else { false }
        }

        #[flux::sig(fn(i32[@x]) -> i32{v: v >= x && v >= 0})]
        fn abs(x: i32) -> i32 {
            if x < 0 { -x } else { x }
        }
        "#,
    ));
}

#[test]
fn figure2_ownership_examples_verify() {
    assert!(flux_safe(
        r#"
        #[flux::sig(fn(x: &mut nat))]
        fn decr(x: &mut i32) {
            let y = *x;
            if y > 0 {
                *x = y - 1;
            }
        }

        #[flux::sig(fn(x: &strg i32[@n]) ensures *x: i32[n + 1])]
        fn incr(x: &mut i32) {
            *x += 1;
        }

        #[flux::sig(fn() -> i32[2])]
        fn use_incr() -> i32 {
            let mut x = 1;
            incr(&mut x);
            x
        }
        "#,
    ));
}

#[test]
fn figure4_init_zeros_verifies_without_invariants() {
    let src = r#"
        #[flux::sig(fn(usize[@n]) -> RVec<f32>[n])]
        fn init_zeros(n: usize) -> RVec<f32> {
            let mut vec: RVec<f32> = RVec::new();
            let mut i = 0;
            while i < n {
                vec.push(0.0);
                i += 1;
            }
            vec
        }
    "#;
    let outcome = verify_source(src, Mode::Flux, &VerifyConfig::default()).unwrap();
    assert!(outcome.safe);
    assert_eq!(outcome.annot_lines, 0);
}

#[test]
fn broken_specifications_are_rejected() {
    assert!(!flux_safe(
        r#"
        #[flux::sig(fn(x: &strg i32[@n]) ensures *x: i32[n + 2])]
        fn incr(x: &mut i32) {
            *x += 1;
        }
        "#,
    ));
    assert!(!flux_safe(
        r#"
        #[flux::sig(fn(v: &RVec<i32>[@n], usize) -> i32)]
        fn read(v: &RVec<i32>, i: usize) -> i32 { v.get(i) }
        "#,
    ));
}
