//! In-process exercise of the `fluxd` server loop (PR 9): the same `run`
//! function the binary wraps, driven over byte buffers so tier-1 coverage
//! needs no child process.
//!
//! The fault plan and the daemon's cache caps are process-global, so the
//! tests serialize themselves on a shared mutex.

use flux_bench::json::{parse, Value};
use flux_daemon::{proto, quiet_injected_panics, run, ServerConfig};
use flux_smt::testing::{clear_fault_plan, install_fault_plan, with_watchdog, FaultPlan};
use std::collections::HashMap;
use std::io::Cursor;
use std::sync::Mutex;

/// Serializes the tests: the fault plan and the global cache caps are
/// process-wide, so concurrent daemon runs would bleed into each other.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    EXCLUSIVE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A config safe for slow debug builds: effectively no deadline.
fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 1,
        max_deadline_ms: 600_000,
        ..ServerConfig::default()
    }
}

/// Frames `payloads` into one input buffer.
fn script(payloads: &[String]) -> Vec<u8> {
    let mut input = Vec::new();
    for payload in payloads {
        proto::write_frame(&mut input, payload).expect("framing into a Vec cannot fail");
    }
    input
}

/// Runs the server over `input` and indexes the response frames by id.
/// Duplicate answers for one nonzero id fail the test — every request must
/// be answered exactly once.  Id-0 frames (frame-level errors with no
/// recoverable request id, and the end-of-input statistics flush) are
/// returned separately in emission order.
fn serve(config: &ServerConfig, input: Vec<u8>) -> (HashMap<u64, Value>, Vec<Value>) {
    let mut output = Vec::new();
    run(config, Cursor::new(input), &mut output);
    let mut responses = HashMap::new();
    let mut uncorrelated = Vec::new();
    let mut cursor = Cursor::new(output);
    loop {
        match proto::read_frame(&mut cursor, usize::MAX) {
            proto::Frame::Eof => break,
            proto::Frame::Payload(payload) => {
                let value = parse(&payload).expect("daemon emitted unparseable JSON");
                let id = value
                    .get("id")
                    .and_then(Value::as_u64)
                    .expect("response id");
                if id == 0 {
                    uncorrelated.push(value);
                } else {
                    assert!(
                        responses.insert(id, value).is_none(),
                        "two responses for id {id}"
                    );
                }
            }
            other => panic!("daemon emitted a malformed frame: {other:?}"),
        }
    }
    (responses, uncorrelated)
}

fn result_of(response: &Value) -> &str {
    response
        .get("result")
        .and_then(Value::as_str)
        .expect("response has a result")
}

const SAFE_SRC: &str = r#"
    #[flux::sig(fn(i32{v: v > 0}) -> i32{v: v > 1})]
    fn bump(x: i32) -> i32 { x + 1 }
"#;

const UNSAFE_SRC: &str = r#"
    #[flux::sig(fn(x: &strg i32[@n]) ensures *x: i32[n + 2])]
    fn incr(x: &mut i32) {
        *x += 1;
    }
"#;

#[test]
fn serves_verify_status_reload_shutdown_with_warm_second_pass() {
    let _guard = lock();
    with_watchdog("daemon service flow", 600, || {
        let config = test_config();
        let (responses, _) = serve(
            &config,
            script(&[
                r#"{"id":1,"method":"verify","program":"bsearch"}"#.to_string(),
                r#"{"id":2,"method":"status"}"#.to_string(),
                r#"{"id":3,"method":"verify","program":"bsearch","mode":"flux"}"#.to_string(),
                r#"{"id":5,"method":"shutdown"}"#.to_string(),
            ]),
        );
        assert_eq!(result_of(&responses[&1]), "verified");
        assert_eq!(result_of(&responses[&2]), "status");
        let caches = responses[&2].get("caches").expect("status reports caches");
        assert!(caches.get("hcons_nodes").and_then(Value::as_u64).is_some());
        assert_eq!(
            caches
                .get("hcons_watermark_exceeded")
                .and_then(Value::as_bool),
            Some(false),
            "the node arena cannot plausibly exceed the default watermark here"
        );
        // Second pass over the same program: served from the warm
        // process-global verdict cache (the single worker serializes the
        // two requests, so the first has landed before the second runs).
        assert_eq!(result_of(&responses[&3]), "verified");
        let xbench = responses[&3]
            .get("stats")
            .and_then(|s| s.get("xbench_hits"))
            .and_then(Value::as_u64)
            .expect("verify responses carry stats");
        assert!(xbench > 0, "second pass should hit the warm cache");
        // Final statistics frame answers the shutdown id after the drain.
        assert_eq!(result_of(&responses[&5]), "final");
        assert_eq!(
            responses[&5].get("admitted").and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(
            responses[&5].get("verified").and_then(Value::as_u64),
            Some(2)
        );

        // A second daemon run over the same process (the caches are
        // process-global and still warm): `reload` must report dropping
        // the validity entries the first run created.  Running it in its
        // own session makes the flush deterministic — inside the first
        // session the supervisor would race the worker still solving.
        let (responses, _) = serve(
            &config,
            script(&[
                r#"{"id":1,"method":"reload"}"#.to_string(),
                r#"{"id":2,"method":"shutdown"}"#.to_string(),
            ]),
        );
        assert_eq!(result_of(&responses[&1]), "reloaded");
        assert!(
            responses[&1]
                .get("validity_entries_dropped")
                .and_then(Value::as_u64)
                .expect("reload reports what it dropped")
                > 0,
            "the warm verdict cache from the first session should be flushed"
        );
        assert_eq!(result_of(&responses[&2]), "final");
    });
}

#[test]
fn reload_observes_fresh_environment() {
    let _guard = lock();
    with_watchdog("daemon live reload", 600, || {
        // Start with one worker, then retune the environment mid-run: the
        // reload answer must echo the *new* widths.  This pins the
        // regression where `FLUX_THREADS` was latched in a process-global
        // `OnceLock` at first use, which made `reload` a silent no-op for
        // thread counts — the daemon kept serving the stale startup value.
        std::env::set_var("FLUXD_WORKERS", "3");
        std::env::set_var("FLUX_THREADS", "5");
        // Keep the post-reload deadline ceiling test-safe on slow debug
        // builds (a reload re-reads *every* knob, including this one).
        std::env::set_var("FLUXD_MAX_DEADLINE_MS", "600000");
        let config = test_config();
        let (responses, _) = serve(
            &config,
            script(&[
                r#"{"id":1,"method":"reload"}"#.to_string(),
                // The pool was just grown 1 → 3 and per-request configs are
                // cloned fresh: verification must still work afterwards.
                r#"{"id":2,"method":"verify","program":"bsearch"}"#.to_string(),
                r#"{"id":3,"method":"status"}"#.to_string(),
                r#"{"id":4,"method":"shutdown"}"#.to_string(),
            ]),
        );
        std::env::remove_var("FLUXD_WORKERS");
        std::env::remove_var("FLUX_THREADS");
        std::env::remove_var("FLUXD_MAX_DEADLINE_MS");
        assert_eq!(result_of(&responses[&1]), "reloaded");
        assert_eq!(
            responses[&1].get("workers").and_then(Value::as_u64),
            Some(3),
            "reload must observe the new FLUXD_WORKERS, not the startup value"
        );
        assert_eq!(
            responses[&1].get("fn_threads").and_then(Value::as_u64),
            Some(5),
            "reload must observe the new FLUX_THREADS, not a OnceLock'd one"
        );
        assert_eq!(result_of(&responses[&2]), "verified");
        assert_eq!(result_of(&responses[&3]), "status");
        assert_eq!(
            responses[&3].get("workers").and_then(Value::as_u64),
            Some(3),
            "status must report the reloaded pool width"
        );
        assert_eq!(result_of(&responses[&4]), "final");
    });
}

#[test]
fn malformed_input_yields_structured_errors_never_exit() {
    let _guard = lock();
    with_watchdog("daemon framing errors", 600, || {
        let config = test_config();
        let mut input = Vec::new();
        // Malformed header: resynchronises at the newline.
        input.extend_from_slice(b"not-a-length\n");
        // Well-formed frame holding malformed JSON.
        proto::write_frame(&mut input, "{\"id\":7,").unwrap();
        // Unknown method: answered, id preserved.
        proto::write_frame(&mut input, r#"{"id":8,"method":"explode"}"#).unwrap();
        // Oversized frame: skipped in sync.
        let big = format!(
            r#"{{"id":9,"method":"verify","source":"{}"}}"#,
            "x".repeat(2048)
        );
        proto::write_frame(&mut input, &big).unwrap();
        // Missing program/source.
        proto::write_frame(&mut input, r#"{"id":10,"method":"verify"}"#).unwrap();
        // Unknown program name.
        proto::write_frame(
            &mut input,
            r#"{"id":11,"method":"verify","program":"nope"}"#,
        )
        .unwrap();
        // Frontend error: truncated source text.
        proto::write_frame(
            &mut input,
            r#"{"id":12,"method":"verify","source":"fn broken( {"}"#,
        )
        .unwrap();
        // The daemon must still be alive and serving after all of that.
        proto::write_frame(
            &mut input,
            r#"{"id":13,"method":"verify","program":"dotprod"}"#,
        )
        .unwrap();
        proto::write_frame(&mut input, r#"{"id":14,"method":"shutdown"}"#).unwrap();

        let config = ServerConfig {
            max_frame: 1024,
            ..config
        };
        let (responses, uncorrelated) = serve(&config, input);
        // Errors with no recoverable request id carry id 0; exactly three
        // land here: the bad header, the malformed JSON (its `id` field is
        // unparseable along with the rest of it) and the oversized frame.
        assert_eq!(uncorrelated.len(), 3, "{uncorrelated:?}");
        for frame in &uncorrelated {
            assert_eq!(result_of(frame), "error");
        }
        for id in [8, 10, 11, 12] {
            assert_eq!(
                result_of(&responses[&id]),
                "error",
                "id {id}: {:?}",
                responses[&id]
            );
        }
        assert_eq!(result_of(&responses[&13]), "verified");
        assert_eq!(result_of(&responses[&14]), "final");
    });
}

#[test]
fn overload_answers_structured_busy() {
    let _guard = lock();
    with_watchdog("daemon admission control", 600, || {
        let config = ServerConfig {
            workers: 1,
            queue_cap: 1,
            retry_after_ms: 25,
            max_deadline_ms: 600_000,
            ..ServerConfig::default()
        };
        // Eight verifications flood in far faster than one worker clears
        // them (admission is microseconds, a verification milliseconds):
        // the queue (depth 1) must overflow into structured busy answers.
        let mut payloads: Vec<String> = (1..=8)
            .map(|id| format!("{{\"id\":{id},\"method\":\"verify\",\"program\":\"kmp\"}}"))
            .collect();
        payloads.push(r#"{"id":9,"method":"shutdown"}"#.to_string());
        let (responses, _) = serve(&config, script(&payloads));

        let mut admitted = 0u64;
        let mut busy = 0u64;
        for id in 1..=8u64 {
            let response = &responses[&id];
            match result_of(response) {
                "busy" => {
                    busy += 1;
                    assert_eq!(
                        response.get("retry_after_ms").and_then(Value::as_u64),
                        Some(25),
                        "busy responses carry the configured back-off"
                    );
                }
                "verified" => admitted += 1,
                other => panic!("id {id}: unexpected result {other}"),
            }
        }
        assert!(busy >= 1, "a depth-1 queue must reject part of the flood");
        assert_eq!(admitted + busy, 8, "every request answered exactly once");
        let fin = &responses[&9];
        assert_eq!(fin.get("admitted").and_then(Value::as_u64), Some(admitted));
        assert_eq!(fin.get("busy").and_then(Value::as_u64), Some(busy));
    });
}

#[test]
fn faulted_daemon_contains_panics_and_never_falsely_verifies() {
    let _guard = lock();
    with_watchdog("daemon fault containment", 600, || {
        quiet_injected_panics();
        install_fault_plan(FaultPlan {
            seed: 42,
            unknown_permille: 200,
            panic_permille: 300,
            delay_permille: 50,
            ..FaultPlan::default()
        });

        // 40 alternating safe/unsafe inline programs under a heavy fault
        // storm.  Faults may degrade any verdict to `unknown` or `error`,
        // but an unsafe program must never come back `verified`.
        let quoted_safe = flux_bench::json::quote(SAFE_SRC);
        let quoted_unsafe = flux_bench::json::quote(UNSAFE_SRC);
        let mut payloads = Vec::new();
        for id in 1..=40u64 {
            let source = if id % 2 == 0 {
                &quoted_unsafe
            } else {
                &quoted_safe
            };
            payloads.push(format!(
                "{{\"id\":{id},\"method\":\"verify\",\"source\":{source}}}"
            ));
        }
        payloads.push(r#"{"id":41,"method":"shutdown"}"#.to_string());
        let config = ServerConfig {
            workers: 2,
            max_deadline_ms: 600_000,
            ..ServerConfig::default()
        };
        let (responses, _) = serve(&config, script(&payloads));
        clear_fault_plan();

        for id in 1..=40u64 {
            let response = responses
                .get(&id)
                .unwrap_or_else(|| panic!("id {id} was never answered"));
            let result = result_of(response);
            assert!(
                ["verified", "rejected", "unknown", "error", "busy"].contains(&result),
                "id {id}: unstructured result {result}"
            );
            if id % 2 == 0 {
                assert_ne!(
                    result, "verified",
                    "id {id}: faults made an unsafe program verify"
                );
            }
        }
        assert_eq!(result_of(&responses[&41]), "final");

        // No residue: with the plan cleared, a fresh daemon run over the
        // same process-global caches gives clean conclusive verdicts.
        let (clean, _) = serve(
            &ServerConfig {
                workers: 1,
                max_deadline_ms: 600_000,
                ..ServerConfig::default()
            },
            script(&[
                format!("{{\"id\":1,\"method\":\"verify\",\"source\":{quoted_safe}}}"),
                format!("{{\"id\":2,\"method\":\"verify\",\"source\":{quoted_unsafe}}}"),
            ]),
        );
        assert_eq!(result_of(&clean[&1]), "verified");
        assert_eq!(result_of(&clean[&2]), "rejected");
    });
}
