//! Deterministic fault-injection fuzz (PR 8): seeded fault plans inject
//! spurious solver `Unknown`s, worker panics and lock-hold delays at the
//! engine's choke points while full fixpoint solves run on two worker
//! threads.  Three properties, checked across every seed:
//!
//! 1. **No panic escapes** — injected worker panics are contained by the
//!    scheduler; the solve returns a structured result.
//! 2. **No hang** — the whole fuzz loop runs under a watchdog.
//! 3. **No false verification** — a faulted run may report a system safe
//!    only when the fault-free run does too.
//!
//! The fault plan is process-global, so this file holds a single test; the
//! seed count is `FLUX_FAULT_SEEDS` (default 100).

use flux_fixpoint::{Constraint, FixConfig, FixpointSolver, Guard, KVarApp, KVarStore};
use flux_logic::{env_parse, Expr, Name, Sort, SortCtx};
use flux_smt::testing::{clear_fault_plan, install_fault_plan, with_watchdog, FaultPlan};

/// Two independent κ components (so the parallel scheduler actually spawns
/// workers at `threads: 2`) with a shared entry bound.  `safe` selects
/// whether the concrete head is provable.
fn system(salt: &str, safe: bool) -> (Constraint, KVarStore) {
    let mut kvars = KVarStore::new();
    let k1 = kvars.fresh(vec![Sort::Int]);
    let k2 = kvars.fresh(vec![Sort::Int]);
    let x = Name::intern(&format!("fi_{salt}_x"));
    let bound = if safe { 0 } else { 100 };
    let component = |k: flux_fixpoint::KVid, off: i128| {
        Constraint::conj(vec![
            Constraint::kvar(KVarApp::new(k, vec![Expr::var(x) + Expr::int(off)])),
            Constraint::implies(
                Guard::KVar(KVarApp::new(k, vec![Expr::var(x) + Expr::int(off)])),
                Constraint::pred(
                    Expr::gt(Expr::var(x) + Expr::int(off), Expr::int(bound)),
                    off as usize,
                ),
            ),
        ])
    };
    let c = Constraint::forall(
        x,
        Sort::Int,
        Expr::ge(Expr::var(x), Expr::int(5)),
        Constraint::conj(vec![component(k1, 0), component(k2, 1)]),
    );
    (c, kvars)
}

fn solve(c: &Constraint, kvars: &KVarStore) -> flux_fixpoint::FixResult {
    let mut solver = FixpointSolver::new(FixConfig {
        threads: 2,
        ..FixConfig::default()
    });
    solver.solve(c, kvars, &SortCtx::new())
}

#[test]
fn faulted_solves_never_panic_hang_or_falsely_verify() {
    with_watchdog("fault fuzz", 600, || {
        // Injected worker panics are expected by the hundreds; keep the
        // default hook's backtrace spam out of the log but forward every
        // *other* panic (a genuine assertion failure must stay visible).
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("injected worker fault"));
            if !injected {
                prev(info);
            }
        }));

        // Fault-free references pin the corpus's polarity: the `true`
        // variant verifies, the `false` variant does not, whatever the salt
        // (the salt only renames variables).
        let references = [system("ref_a", true), system("ref_b", false)];
        let expect_safe = [true, false];
        let reference_results: Vec<_> = references.iter().map(|(c, k)| solve(c, k)).collect();
        for (i, reference) in reference_results.iter().enumerate() {
            assert_eq!(
                reference.is_safe(),
                expect_safe[i],
                "fault-free reference {i} has the wrong polarity: {reference:?}"
            );
        }

        let seeds = env_parse("FLUX_FAULT_SEEDS", 100u64);
        for seed in 1..=seeds {
            install_fault_plan(FaultPlan {
                seed,
                unknown_permille: 250,
                panic_permille: 120,
                delay_permille: 30,
                ..FaultPlan::default()
            });
            // Fresh per-seed vocabularies: every solve misses the global
            // verdict cache and drives the engine (and so the SAT/session/
            // worker fault sites) for real, instead of replaying cached
            // verdicts from the previous seed.
            for (i, safe) in [(0usize, true), (1usize, false)] {
                let (c, kvars) = system(&format!("s{seed}v{i}"), safe);
                // Any panic escaping `solve` fails the test right here —
                // containment is the property, not an accident.
                let result = solve(&c, &kvars);
                if safe {
                    assert!(
                        !matches!(result, flux_fixpoint::FixResult::Unsafe { .. }),
                        "seed {seed}: faults fabricated a counterexample for a \
                         safe system: {result:?}"
                    );
                } else {
                    assert!(
                        !result.is_safe(),
                        "seed {seed}: faults made an unsafe system verify: {result:?}"
                    );
                }
            }
            clear_fault_plan();
        }

        // Faulted runs must leave no residue: with the plan cleared, fresh
        // solves reproduce the fault-free references exactly (injected
        // `Unknown`s are never shared through the global verdict cache).
        for (i, (c, kvars)) in references.iter().enumerate() {
            assert_eq!(
                &solve(c, kvars),
                &reference_results[i],
                "system {i} diverged after the fault storm"
            );
        }
    });
}
