//! The Table 1 regression gate: every `(benchmark, mode)` cell must match
//! the expected-outcome matrix in `flux_suite::expect_verifies`.
//!
//! Any checker, qualifier, solver or baseline regression that silently
//! shrinks the verified corpus fails this test instead of just changing a
//! number in the benchmark report.

use flux::{run_benchmark, Mode, VerifyConfig};
use flux_suite::{benchmarks, expect_verifies, Mode as SuiteMode};

#[test]
fn every_table1_cell_matches_the_expected_outcome_matrix() {
    let config = VerifyConfig::default();
    let mut mismatches = Vec::new();
    for b in benchmarks() {
        let row = run_benchmark(&b, &config);
        for (mode, outcome) in [
            (SuiteMode::Flux, &row.flux),
            (SuiteMode::Baseline, &row.baseline),
        ] {
            let expected = expect_verifies(b.name, mode);
            if outcome.safe != expected {
                mismatches.push(format!(
                    "{} / {mode:?}: expected safe={expected}, got safe={} (errors: {:?})",
                    b.name, outcome.safe, outcome.errors
                ));
            }
        }
        assert_eq!(row.flux.mode, Mode::Flux);
        assert_eq!(row.baseline.mode, Mode::Baseline);
    }
    assert!(
        mismatches.is_empty(),
        "Table 1 outcome matrix drifted:\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn expectation_matrix_covers_exactly_the_benchmark_suite() {
    // The paper's headline claim, as pinned by the matrix: all 16 cells
    // (8 benchmarks × 2 verifiers) are expected to verify.
    for b in benchmarks() {
        for mode in [SuiteMode::Flux, SuiteMode::Baseline] {
            assert!(
                expect_verifies(b.name, mode),
                "{} / {mode:?} should be an expected-green Table 1 cell",
                b.name
            );
        }
    }
    // Unknown benchmarks are not silently expected to verify.
    assert!(!expect_verifies("nonexistent", SuiteMode::Flux));
    assert!(!expect_verifies("nonexistent", SuiteMode::Baseline));
}
