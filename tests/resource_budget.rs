//! Resource-governor properties (PR 8): generous budgets are bit-identical
//! to the unlimited defaults, and tight budgets degrade *soundly* — a run
//! cut short by a deadline or step cap reports `Unknown`, never a false
//! "verified" and never a fabricated counterexample.

use flux::{Mode, VerifyConfig};
use flux_fixpoint::{Constraint, FixConfig, FixResult, FixpointSolver, Guard, KVarApp, KVarStore};
use flux_logic::{Expr, Name, Sort, SortCtx};
use flux_smt::ResourceBudget;
use std::time::Duration;

/// A counting-loop system that is safe under the default qualifiers and
/// needs more than one weakening iteration to converge.  `salt` keeps the
/// variable names (and so the validity-cache keys) distinct per test, so
/// one test's cached verdicts cannot mask another's budget behaviour.
fn safe_loop(salt: &str) -> (Constraint, KVarStore) {
    let mut kvars = KVarStore::new();
    let k = kvars.fresh(vec![Sort::Int, Sort::Int]);
    let i = Name::intern(&format!("rb_{salt}_i"));
    let n = Name::intern(&format!("rb_{salt}_n"));
    let c = Constraint::forall(
        n,
        Sort::Int,
        Expr::gt(Expr::var(n), Expr::int(0)),
        Constraint::conj(vec![
            Constraint::kvar(KVarApp::new(k, vec![Expr::int(0), Expr::var(n)])),
            Constraint::forall(
                i,
                Sort::Int,
                Expr::tt(),
                Constraint::implies(
                    Guard::KVar(KVarApp::new(k, vec![Expr::var(i), Expr::var(n)])),
                    Constraint::implies(
                        Guard::Pred(Expr::lt(Expr::var(i), Expr::var(n))),
                        Constraint::conj(vec![
                            Constraint::kvar(KVarApp::new(
                                k,
                                vec![Expr::var(i) + Expr::int(1), Expr::var(n)],
                            )),
                            Constraint::pred(Expr::le(Expr::int(0), Expr::var(i)), 0),
                        ]),
                    ),
                ),
            ),
        ]),
    );
    (c, kvars)
}

/// A system whose concrete head genuinely fails: `x ≥ 5` does not give
/// `x > 100`, whatever κ converges to.
fn unsafe_system(salt: &str) -> (Constraint, KVarStore) {
    let mut kvars = KVarStore::new();
    let k = kvars.fresh(vec![Sort::Int]);
    let x = Name::intern(&format!("rb_{salt}_x"));
    let c = Constraint::forall(
        x,
        Sort::Int,
        Expr::ge(Expr::var(x), Expr::int(5)),
        Constraint::conj(vec![
            Constraint::kvar(KVarApp::new(k, vec![Expr::var(x)])),
            Constraint::implies(
                Guard::KVar(KVarApp::new(k, vec![Expr::var(x)])),
                Constraint::pred(Expr::gt(Expr::var(x), Expr::int(100)), 7),
            ),
        ]),
    );
    (c, kvars)
}

fn config_with(budget: ResourceBudget) -> FixConfig {
    FixConfig {
        smt: flux_smt::SmtConfig {
            budget,
            ..flux_smt::SmtConfig::default()
        },
        ..FixConfig::default()
    }
}

/// A budget generous enough to never bind gives exactly the same result —
/// same verdict, same inferred solution, same query trajectory — as the
/// unlimited default.  This is the bit-identity half of the governor's
/// contract: paying for the checks must not change what is computed.
#[test]
fn generous_budget_is_bit_identical_to_unlimited() {
    let (c, kvars) = safe_loop("gen");
    let ctx = SortCtx::new();
    let mut plain = FixpointSolver::with_defaults();
    let reference = plain.solve(&c, &kvars, &ctx);

    let mut generous = ResourceBudget::uniform_steps(10_000_000);
    generous.timeout = Some(Duration::from_secs(3600));
    let mut governed = FixpointSolver::new(config_with(generous));
    let result = governed.solve(&c, &kvars, &ctx);

    assert_eq!(result, reference, "a non-binding budget changed the result");
    assert!(reference.is_safe(), "the reference system must verify");
    assert_eq!(governed.stats.smt_queries, plain.stats.smt_queries);
    assert_eq!(governed.stats.unknown_drops, 0);
    assert_eq!(governed.smt_stats().budget_exhausted, 0);
}

/// An already-elapsed deadline must terminate promptly with `Unknown` —
/// not hang, not report `Safe`, and not invent a counterexample.
#[test]
fn zero_deadline_degrades_to_unknown() {
    let (c, kvars) = safe_loop("zdl");
    let mut budget = ResourceBudget::UNLIMITED;
    budget.timeout = Some(Duration::ZERO);
    let mut solver = FixpointSolver::new(config_with(budget));
    let result = solver.solve(&c, &kvars, &SortCtx::new());
    let FixResult::Unknown { reasons, .. } = result else {
        panic!("zero deadline must be inconclusive, got {result:?}");
    };
    assert!(!reasons.is_empty(), "an Unknown result must say why");
}

/// Sweeping step budgets from starvation to plenty never flips polarity:
/// the safe system is `Safe` or `Unknown` at every budget (never `Unsafe`),
/// the unsafe system is `Unsafe` or `Unknown` (never `Safe`), and the
/// tightest budget actually binds (the safe system cannot converge in one
/// weakening iteration, so it must degrade rather than claim a proof).
#[test]
fn tight_step_budgets_never_flip_polarity() {
    let ctx = SortCtx::new();
    for steps in [1u64, 2, 4, 8, 16, 64, 256, 4096] {
        let budget = ResourceBudget::uniform_steps(steps);

        let (c, kvars) = safe_loop("tight");
        let mut solver = FixpointSolver::new(config_with(budget));
        let result = solver.solve(&c, &kvars, &ctx);
        assert!(
            !matches!(result, FixResult::Unsafe { .. }),
            "budget {steps}: a safe system degraded to a counterexample: {result:?}"
        );
        if steps == 1 {
            assert!(
                matches!(result, FixResult::Unknown { .. }),
                "budget 1: one weakening iteration cannot prove this system, \
                 got {result:?}"
            );
        }

        let (c, kvars) = unsafe_system("tight");
        let mut solver = FixpointSolver::new(config_with(budget));
        let result = solver.solve(&c, &kvars, &ctx);
        assert!(
            !matches!(result, FixResult::Safe(_)),
            "budget {steps}: an unsafe system was reported verified: {result:?}"
        );
    }
}

/// The end-to-end pipeline honours the budget soundly: a starved run of a
/// benchmark that verifies under defaults produces no spurious errors — it
/// either still verifies (everything answered from cache) or reports the
/// starved functions as unknown, which the outcome counts but never calls
/// safe.
#[test]
fn starved_pipeline_reports_unknown_not_errors() {
    let b = flux::benchmark("dotprod").expect("dotprod benchmark exists");
    let mut config = VerifyConfig::default();
    config.check.fixpoint.smt.budget = ResourceBudget::uniform_steps(2);
    let outcome = flux::verify_source(b.flux_src, Mode::Flux, &config)
        .expect("frontend must still succeed under budgets");
    assert!(
        outcome.errors.is_empty(),
        "a starved run of a safe benchmark fabricated errors: {:?}",
        outcome.errors
    );
    if !outcome.safe {
        assert!(
            outcome.stats.unknowns > 0,
            "an inconclusive run must report which functions degraded"
        );
    }
}
