//! Acceptance tests for the incremental theory layer: the persistent
//! simplex under arbitrary assert/push/pop scripts must agree with one-shot
//! [`check_lia`] on feasibility *and* unsat-core membership, and the
//! two-watched-literal SAT core must agree with the historical scan-based
//! propagator across the entire benchmark corpus.  (Query-for-query
//! equivalence of the two propagators on random incremental CNF workloads
//! is pinned by `flux_smt::sat`'s unit tests.)

use flux::{verify_source, FixConfig, Mode, VerifyConfig};
use flux_logic::Name;
use flux_smt::rational::Rational;
use flux_smt::simplex::{check_lia, model_satisfies, IncrementalSimplex, LiaResult};
use flux_smt::testing::Rng;
use flux_smt::LiaConfig;

type LinConstraint = flux_smt::linear::LinConstraint;

const VARS: [&str; 4] = ["teq_a", "teq_b", "teq_c", "teq_d"];

fn random_constraint(rng: &mut Rng) -> LinConstraint {
    let mut e = flux_smt::linear::LinExpr::constant(Rational::int(rng.int_in(-4, 4)));
    for v in VARS {
        e.add_term(Name::intern(v), Rational::int(rng.int_in(-3, 3)));
    }
    LinConstraint::le_zero(e)
}

/// Materializes the asserted-phase list as one-shot constraints.
fn materialize(family: &[LinConstraint], asserted: &[(usize, bool)]) -> Vec<LinConstraint> {
    asserted
        .iter()
        .map(|&(i, positive)| {
            if positive {
                family[i].clone()
            } else {
                family[i].negate_integer()
            }
        })
        .collect()
}

/// Random assert/push/pop scripts over one persistent tableau, checked
/// against fresh one-shot solves of the currently asserted set at every
/// step.  Infeasible cores are validated semantically: the subset they name
/// must itself be one-shot infeasible.
#[test]
fn incremental_simplex_scripts_agree_with_one_shot() {
    let cfg = LiaConfig::default();
    let mut rng = Rng::new(0x1A51_3D0C);
    for case in 0..48 {
        let family: Vec<LinConstraint> = (0..10).map(|_| random_constraint(&mut rng)).collect();
        let mut simplex = IncrementalSimplex::new(cfg);
        let slots: Vec<_> = family.iter().map(|c| simplex.register(c)).collect();
        //

        let mut asserted: Vec<(usize, bool)> = Vec::new();
        let mut marks: Vec<usize> = Vec::new();
        for step in 0..16 {
            match rng.below(4) {
                // Open a scope and assert a few random phases.
                0 | 1 => {
                    simplex.push();
                    marks.push(asserted.len());
                    for _ in 0..rng.int_in(1, 3) {
                        let i = rng.below(10) as usize;
                        let positive = rng.flip();
                        let tag = asserted.len();
                        match simplex.assert_constraint(slots[i], positive, tag) {
                            Ok(()) => asserted.push((i, positive)),
                            Err(core) => {
                                // The bound contradicted an asserted one:
                                // the named subset must be infeasible on
                                // its own.
                                let mut with_failed = asserted.clone();
                                with_failed.push((i, positive));
                                let subset: Vec<LinConstraint> = core
                                    .iter()
                                    .map(|&t| {
                                        let (j, positive) = with_failed[t];
                                        if positive {
                                            family[j].clone()
                                        } else {
                                            family[j].negate_integer()
                                        }
                                    })
                                    .collect();
                                assert!(
                                    matches!(check_lia(&subset, &cfg), LiaResult::Infeasible(_)),
                                    "case {case} step {step}: assert-conflict core is feasible"
                                );
                            }
                        }
                    }
                }
                // Retract the innermost scope.
                2 if !marks.is_empty() => {
                    simplex.pop();
                    asserted.truncate(marks.pop().expect("mark exists"));
                }
                // Check and compare against a fresh one-shot solve.
                _ => {
                    let one_shot_input = materialize(&family, &asserted);
                    let incremental = simplex.check_integer();
                    let one_shot = check_lia(&one_shot_input, &cfg);
                    match (&incremental, &one_shot) {
                        (LiaResult::Feasible(model), LiaResult::Feasible(_)) => {
                            assert!(
                                model_satisfies(&one_shot_input, model),
                                "case {case} step {step}: incremental model does not satisfy"
                            );
                        }
                        (LiaResult::Infeasible(core), LiaResult::Infeasible(_)) => {
                            let subset = materialize(
                                &family,
                                &core.iter().map(|&t| asserted[t]).collect::<Vec<_>>(),
                            );
                            assert!(
                                matches!(check_lia(&subset, &cfg), LiaResult::Infeasible(_)),
                                "case {case} step {step}: core {core:?} is not infeasible"
                            );
                        }
                        (LiaResult::Unknown, _) | (_, LiaResult::Unknown) => {}
                        (inc, os) => panic!(
                            "case {case} step {step}: incremental says {inc:?}, one-shot {os:?}"
                        ),
                    }
                }
            }
        }
    }
}

/// Both verifiers, whole corpus: the watched-literal SAT core and the
/// scan-based propagator must produce identical verdicts and blamed
/// obligations.  The global verdict cache is disabled on both sides —
/// otherwise the second run would replay the first run's verdicts and the
/// comparison would be vacuous.
#[test]
fn watched_and_scan_propagation_agree_on_the_corpus() {
    let mut watched = VerifyConfig::default();
    watched.check.fixpoint = FixConfig {
        global_cache: false,
        ..FixConfig::default()
    };
    let mut scan = VerifyConfig::default();
    scan.check.fixpoint = FixConfig {
        global_cache: false,
        ..FixConfig::default()
    };
    scan.check.fixpoint.smt.sat.scan_propagation = true;
    scan.wp.smt.sat.scan_propagation = true;
    for b in flux::benchmarks() {
        for (mode, src) in [(Mode::Flux, b.flux_src), (Mode::Baseline, b.baseline_src)] {
            let w = verify_source(src, mode, &watched)
                .unwrap_or_else(|e| panic!("{}: frontend error {e}", b.name));
            let s = verify_source(src, mode, &scan)
                .unwrap_or_else(|e| panic!("{}: frontend error {e}", b.name));
            assert_eq!(
                w.safe, s.safe,
                "{} ({mode:?}): watched and scan propagation disagree \
                 (watched errors: {:?}, scan errors: {:?})",
                b.name, w.errors, s.errors
            );
            assert_eq!(
                w.errors, s.errors,
                "{} ({mode:?}): verdicts agree but blamed obligations differ",
                b.name
            );
        }
    }
}

/// The new observability counters must actually count: a benchmark that
/// exercises branching arithmetic reports pivots and propagations.
#[test]
fn pivot_and_propagation_counters_are_reported() {
    let b = flux::benchmark("bsearch").expect("bsearch is in the suite");
    let outcome = verify_source(b.flux_src, Mode::Flux, &VerifyConfig::default()).unwrap();
    assert!(outcome.safe);
    assert!(
        outcome.stats.propagations > 0,
        "watched propagation must report its unit propagations: {:?}",
        outcome.stats
    );
    assert!(
        outcome.stats.pivots > 0,
        "the persistent simplex must report its pivots: {:?}",
        outcome.stats
    );
}
