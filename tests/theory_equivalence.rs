//! Acceptance tests for the incremental theory layer: the persistent
//! simplex under arbitrary assert/push/pop scripts must agree with one-shot
//! [`check_lia`] on feasibility *and* unsat-core membership, and the
//! two-watched-literal SAT core must agree with the historical scan-based
//! propagator across the entire benchmark corpus.  (Query-for-query
//! equivalence of the two propagators on random incremental CNF workloads
//! is pinned by `flux_smt::sat`'s unit tests.)

use flux::{verify_source, FixConfig, Mode, VerifyConfig};
use flux_logic::{Expr, ExprId, Name, Sort, SortCtx};
use flux_smt::rational::Rational;
use flux_smt::simplex::{check_lia, model_satisfies, IncrementalSimplex, LiaResult};
use flux_smt::testing::Rng;
use flux_smt::{LiaConfig, Session, SmtConfig, Validity};

type LinConstraint = flux_smt::linear::LinConstraint;

const VARS: [&str; 4] = ["teq_a", "teq_b", "teq_c", "teq_d"];

fn random_constraint(rng: &mut Rng) -> LinConstraint {
    let mut e = flux_smt::linear::LinExpr::constant(Rational::int(rng.int_in(-4, 4)));
    for v in VARS {
        e.add_term(Name::intern(v), Rational::int(rng.int_in(-3, 3)));
    }
    LinConstraint::le_zero(e)
}

/// Materializes the asserted-phase list as one-shot constraints.
fn materialize(family: &[LinConstraint], asserted: &[(usize, bool)]) -> Vec<LinConstraint> {
    asserted
        .iter()
        .map(|&(i, positive)| {
            if positive {
                family[i].clone()
            } else {
                family[i].negate_integer()
            }
        })
        .collect()
}

/// Random assert/push/pop scripts over one persistent tableau, checked
/// against fresh one-shot solves of the currently asserted set at every
/// step.  Infeasible cores are validated semantically: the subset they name
/// must itself be one-shot infeasible.
#[test]
fn incremental_simplex_scripts_agree_with_one_shot() {
    let cfg = LiaConfig::default();
    let mut rng = Rng::new(0x1A51_3D0C);
    for case in 0..48 {
        let family: Vec<LinConstraint> = (0..10).map(|_| random_constraint(&mut rng)).collect();
        let mut simplex = IncrementalSimplex::new(cfg);
        let slots: Vec<_> = family.iter().map(|c| simplex.register(c)).collect();
        //

        let mut asserted: Vec<(usize, bool)> = Vec::new();
        let mut marks: Vec<usize> = Vec::new();
        for step in 0..16 {
            match rng.below(4) {
                // Open a scope and assert a few random phases.
                0 | 1 => {
                    simplex.push();
                    marks.push(asserted.len());
                    for _ in 0..rng.int_in(1, 3) {
                        let i = rng.below(10) as usize;
                        let positive = rng.flip();
                        let tag = asserted.len();
                        match simplex.assert_constraint(slots[i], positive, tag) {
                            Ok(()) => asserted.push((i, positive)),
                            Err(core) => {
                                // The bound contradicted an asserted one:
                                // the named subset must be infeasible on
                                // its own.
                                let mut with_failed = asserted.clone();
                                with_failed.push((i, positive));
                                let subset: Vec<LinConstraint> = core
                                    .iter()
                                    .map(|&t| {
                                        let (j, positive) = with_failed[t];
                                        if positive {
                                            family[j].clone()
                                        } else {
                                            family[j].negate_integer()
                                        }
                                    })
                                    .collect();
                                assert!(
                                    matches!(check_lia(&subset, &cfg), LiaResult::Infeasible(_)),
                                    "case {case} step {step}: assert-conflict core is feasible"
                                );
                            }
                        }
                    }
                }
                // Retract the innermost scope.
                2 if !marks.is_empty() => {
                    simplex.pop();
                    asserted.truncate(marks.pop().expect("mark exists"));
                }
                // Check and compare against a fresh one-shot solve.
                _ => {
                    let one_shot_input = materialize(&family, &asserted);
                    let incremental = simplex.check_integer();
                    let one_shot = check_lia(&one_shot_input, &cfg);
                    match (&incremental, &one_shot) {
                        (LiaResult::Feasible(model), LiaResult::Feasible(_)) => {
                            assert!(
                                model_satisfies(&one_shot_input, model),
                                "case {case} step {step}: incremental model does not satisfy"
                            );
                        }
                        (LiaResult::Infeasible(core), LiaResult::Infeasible(_)) => {
                            let subset = materialize(
                                &family,
                                &core.iter().map(|&t| asserted[t]).collect::<Vec<_>>(),
                            );
                            assert!(
                                matches!(check_lia(&subset, &cfg), LiaResult::Infeasible(_)),
                                "case {case} step {step}: core {core:?} is not infeasible"
                            );
                        }
                        (LiaResult::Unknown, _) | (_, LiaResult::Unknown) => {}
                        (inc, os) => panic!(
                            "case {case} step {step}: incremental says {inc:?}, one-shot {os:?}"
                        ),
                    }
                }
            }
        }
    }
}

/// Lockstep occurrence-list vs row-scan simplex over random
/// assert/push/pop workloads: both configurations are driven through the
/// identical script and must agree step for step — on whether each assert
/// is accepted and on the feasibility verdict of every check.  Models and
/// cores are free to differ (the two paths may visit violated rows in a
/// different order), so they are validated semantically rather than
/// compared.
#[test]
fn occurrence_lists_and_row_scans_agree_on_random_scripts() {
    let occ = LiaConfig {
        row_scan: false,
        ..LiaConfig::default()
    };
    let scan = LiaConfig {
        row_scan: true,
        ..LiaConfig::default()
    };
    let mut rng = Rng::new(0x0CC5_CA45);
    for case in 0..32 {
        let family: Vec<LinConstraint> = (0..10).map(|_| random_constraint(&mut rng)).collect();
        let mut s_occ = IncrementalSimplex::new(occ);
        let mut s_scan = IncrementalSimplex::new(scan);
        let slots_occ: Vec<_> = family.iter().map(|c| s_occ.register(c)).collect();
        let slots_scan: Vec<_> = family.iter().map(|c| s_scan.register(c)).collect();

        let mut asserted: Vec<(usize, bool)> = Vec::new();
        let mut marks: Vec<usize> = Vec::new();
        for step in 0..16 {
            match rng.below(4) {
                0 | 1 => {
                    s_occ.push();
                    s_scan.push();
                    marks.push(asserted.len());
                    for _ in 0..rng.int_in(1, 3) {
                        let i = rng.below(10) as usize;
                        let positive = rng.flip();
                        let tag = asserted.len();
                        let r_occ = s_occ.assert_constraint(slots_occ[i], positive, tag);
                        let r_scan = s_scan.assert_constraint(slots_scan[i], positive, tag);
                        assert_eq!(
                            r_occ.is_ok(),
                            r_scan.is_ok(),
                            "case {case} step {step}: occ and row-scan disagree on an assert"
                        );
                        if r_occ.is_ok() {
                            asserted.push((i, positive));
                        }
                    }
                }
                2 if !marks.is_empty() => {
                    s_occ.pop();
                    s_scan.pop();
                    asserted.truncate(marks.pop().expect("mark exists"));
                }
                _ => {
                    let inputs = materialize(&family, &asserted);
                    let a = s_occ.check_integer();
                    let b = s_scan.check_integer();
                    match (&a, &b) {
                        (LiaResult::Feasible(ma), LiaResult::Feasible(mb)) => {
                            assert!(
                                model_satisfies(&inputs, ma) && model_satisfies(&inputs, mb),
                                "case {case} step {step}: a reported model does not satisfy"
                            );
                        }
                        (LiaResult::Infeasible(ca), LiaResult::Infeasible(cb)) => {
                            for core in [ca, cb] {
                                let subset = materialize(
                                    &family,
                                    &core.iter().map(|&t| asserted[t]).collect::<Vec<_>>(),
                                );
                                let cfg = LiaConfig::default();
                                assert!(
                                    matches!(check_lia(&subset, &cfg), LiaResult::Infeasible(_)),
                                    "case {case} step {step}: core {core:?} is not infeasible"
                                );
                            }
                        }
                        (LiaResult::Unknown, LiaResult::Unknown) => {}
                        (a, b) => panic!(
                            "case {case} step {step}: occurrence lists say {a:?}, row scans {b:?}"
                        ),
                    }
                }
            }
        }
    }
}

/// Random weaken-shaped scripts over one retained session: each step
/// retracts some hypothesis conjuncts and re-asserts others, re-pointing
/// the live session at the new set via [`Session::update_hypotheses`] —
/// the clause-DB rebuild keeps the SAT variable space, learned theory
/// lemmas and the simplex basis alive.  After every update the retained
/// session must return the same verdict as a session freshly opened over
/// the same hypotheses, for every goal in the battery.
#[test]
fn retract_reassert_scripts_match_fresh_sessions() {
    let vars = ["rr_a", "rr_b", "rr_c"];
    let mut ctx = SortCtx::new();
    for v in vars {
        ctx.push(Name::intern(v), Sort::Int);
    }
    let var = |s: &str| Expr::var(Name::intern(s));
    // Quantifier-free conjuncts of the shapes the weakening loop produces:
    // qualifier instantiations over the clause's variables.  Subsets may be
    // mutually contradictory — that exercises the fallback path below.
    let pool: Vec<ExprId> = [
        Expr::ge(var("rr_a"), Expr::int(0)),
        Expr::le(var("rr_a"), Expr::int(7)),
        Expr::lt(var("rr_a"), var("rr_b")),
        Expr::ge(var("rr_b"), Expr::int(1)),
        Expr::le(var("rr_b"), var("rr_c")),
        Expr::ge(var("rr_c"), var("rr_a")),
        Expr::le(var("rr_c"), Expr::int(20)),
        Expr::eq(var("rr_a") + var("rr_b"), var("rr_c")),
    ]
    .iter()
    .map(ExprId::intern)
    .collect();
    let goals: Vec<ExprId> = [
        Expr::ge(var("rr_b"), Expr::int(0)),
        Expr::le(var("rr_a"), var("rr_c")),
        Expr::lt(var("rr_a"), Expr::int(8)),
        Expr::ge(var("rr_c"), Expr::int(1)),
        Expr::eq(var("rr_a"), Expr::int(3)),
    ]
    .iter()
    .map(ExprId::intern)
    .collect();
    let hyps_of = |active: &[bool]| -> Vec<ExprId> {
        active
            .iter()
            .zip(&pool)
            .filter_map(|(&on, &id)| on.then_some(id))
            .collect()
    };

    let mut rng = Rng::new(0x5E55_10F4);
    for case in 0..12 {
        let mut active: Vec<bool> = (0..pool.len()).map(|_| rng.flip()).collect();
        let mut live = Session::assume_ids(SmtConfig::default(), &ctx, &hyps_of(&active));
        for step in 0..10 {
            // Toggle a few conjuncts: each flip is a retraction or a
            // re-assertion depending on the current state.
            for _ in 0..rng.int_in(1, 3) {
                let i = rng.below(pool.len() as u64) as usize;
                active[i] = !active[i];
            }
            let hyps = hyps_of(&active);
            if !live.update_hypotheses(&hyps) {
                // The production caller's fallback: the new conjunct set is
                // outside the incremental diff (e.g. contradictory), so the
                // session is discarded and reopened.
                live = Session::assume_ids(SmtConfig::default(), &ctx, &hyps);
            }
            let mut fresh = Session::assume_ids(SmtConfig::default(), &ctx, &hyps);
            for &goal in &goals {
                let retained = live.check_id(goal);
                let reference = fresh.check_id(goal);
                match (&retained, &reference) {
                    (Validity::Valid, Validity::Valid)
                    | (Validity::Invalid(_), Validity::Invalid(_))
                    | (Validity::Unknown, Validity::Unknown) => {}
                    _ => panic!(
                        "case {case} step {step}: retained session says {retained:?}, \
                         fresh session {reference:?}"
                    ),
                }
            }
        }
    }
}

/// Learned-clause-DB reduction, whole corpus: dropping low-activity learned
/// clauses only discards re-derivable resolvents, so verdicts and blamed
/// obligations must be identical with the reduction on and off.  Both
/// toggles are pinned explicitly so the comparison stays meaningful under
/// `FLUX_LEGACY` runs, and the global verdict cache is disabled so the
/// second run cannot replay the first run's verdicts.
#[test]
fn db_reduction_keeps_corpus_verdicts() {
    let mut with = VerifyConfig::default();
    with.check.fixpoint = FixConfig {
        global_cache: false,
        ..FixConfig::default()
    };
    with.check.fixpoint.smt.sat.db_reduction = true;
    with.wp.smt.sat.db_reduction = true;
    let mut without = VerifyConfig::default();
    without.check.fixpoint = FixConfig {
        global_cache: false,
        ..FixConfig::default()
    };
    without.check.fixpoint.smt.sat.db_reduction = false;
    without.wp.smt.sat.db_reduction = false;
    for b in flux::benchmarks() {
        for (mode, src) in [(Mode::Flux, b.flux_src), (Mode::Baseline, b.baseline_src)] {
            let w = verify_source(src, mode, &with)
                .unwrap_or_else(|e| panic!("{}: frontend error {e}", b.name));
            let wo = verify_source(src, mode, &without)
                .unwrap_or_else(|e| panic!("{}: frontend error {e}", b.name));
            assert_eq!(
                w.safe, wo.safe,
                "{} ({mode:?}): DB reduction changed the verdict \
                 (with errors: {:?}, without errors: {:?})",
                b.name, w.errors, wo.errors
            );
            assert_eq!(
                w.errors, wo.errors,
                "{} ({mode:?}): verdicts agree but blamed obligations differ",
                b.name
            );
        }
    }
}

/// Both verifiers, whole corpus: the watched-literal SAT core and the
/// scan-based propagator must produce identical verdicts and blamed
/// obligations.  The global verdict cache is disabled on both sides —
/// otherwise the second run would replay the first run's verdicts and the
/// comparison would be vacuous.
#[test]
fn watched_and_scan_propagation_agree_on_the_corpus() {
    let mut watched = VerifyConfig::default();
    watched.check.fixpoint = FixConfig {
        global_cache: false,
        ..FixConfig::default()
    };
    let mut scan = VerifyConfig::default();
    scan.check.fixpoint = FixConfig {
        global_cache: false,
        ..FixConfig::default()
    };
    scan.check.fixpoint.smt.sat.scan_propagation = true;
    scan.wp.smt.sat.scan_propagation = true;
    for b in flux::benchmarks() {
        for (mode, src) in [(Mode::Flux, b.flux_src), (Mode::Baseline, b.baseline_src)] {
            let w = verify_source(src, mode, &watched)
                .unwrap_or_else(|e| panic!("{}: frontend error {e}", b.name));
            let s = verify_source(src, mode, &scan)
                .unwrap_or_else(|e| panic!("{}: frontend error {e}", b.name));
            assert_eq!(
                w.safe, s.safe,
                "{} ({mode:?}): watched and scan propagation disagree \
                 (watched errors: {:?}, scan errors: {:?})",
                b.name, w.errors, s.errors
            );
            assert_eq!(
                w.errors, s.errors,
                "{} ({mode:?}): verdicts agree but blamed obligations differ",
                b.name
            );
        }
    }
}

/// The new observability counters must actually count: a benchmark that
/// exercises branching arithmetic reports pivots and propagations.
#[test]
fn pivot_and_propagation_counters_are_reported() {
    let b = flux::benchmark("bsearch").expect("bsearch is in the suite");
    let outcome = verify_source(b.flux_src, Mode::Flux, &VerifyConfig::default()).unwrap();
    assert!(outcome.safe);
    assert!(
        outcome.stats.propagations > 0,
        "watched propagation must report its unit propagations: {:?}",
        outcome.stats
    );
    assert!(
        outcome.stats.pivots > 0,
        "the persistent simplex must report its pivots: {:?}",
        outcome.stats
    );
}
