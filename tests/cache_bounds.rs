//! Bounded-cache behaviour under contention (PR 8): with tight capacity
//! caps on all three process-global caches — the hash-consing memos in
//! `flux-logic`, the CNF/preprocessing cache in `flux-smt`, and the global
//! verdict cache in `flux-fixpoint` — an 8-thread storm of sessions and
//! full fixpoint solves must stay *correct*, the caches must hold their
//! caps at steady state, the eviction counters must actually move, and
//! evicted entries must recompute to the same verdicts.
//!
//! The caps are process-global, so the storm lives in a single test; the
//! LRU-policy and shard-storm tests below use private cache instances and
//! can run alongside it.

use flux_fixpoint::{
    global_cache, set_global_cache_capacity, Constraint, FixConfig, FixpointSolver, Guard, KVarApp,
    KVarStore,
};
use flux_logic::{
    hcons_memo_evictions, hcons_memo_high_watermark, set_hcons_memo_capacity, Expr, Name, Sort,
    SortCtx,
};
use flux_smt::testing::with_watchdog;
use flux_smt::{cnf_cache_evictions, cnf_cache_len, set_cnf_cache_capacity, Session, SmtConfig};
use std::thread;

const WORKERS: usize = 8;
const HCONS_CAP: usize = 256;
const CNF_CAP: usize = 64;
const VERDICT_CAP: usize = 32;

/// A session over a vocabulary unique to `salt`: distinct names defeat all
/// three caches, forcing growth (and therefore eviction) instead of hits.
fn check_family(salt: usize) {
    let xn = format!("cb_x{salt}");
    let nn = format!("cb_n{salt}");
    let x = Expr::var(Name::intern(&xn));
    let n = Expr::var(Name::intern(&nn));
    let mut ctx = SortCtx::new();
    ctx.push(Name::intern(&xn), Sort::Int);
    ctx.push(Name::intern(&nn), Sort::Int);
    let hyps = vec![
        Expr::ge(x.clone(), Expr::int(0)),
        Expr::lt(x.clone(), n.clone()),
    ];
    let mut session = Session::assume(SmtConfig::default(), &ctx, &hyps);
    assert!(
        session
            .check(&Expr::le(x.clone() + Expr::int(1), n.clone()))
            .is_valid(),
        "valid implication rejected with bounded caches (salt {salt})"
    );
    assert!(
        !session.check(&Expr::ge(x.clone(), Expr::int(1))).is_valid(),
        "invalid implication accepted with bounded caches (salt {salt})"
    );
}

/// A one-κ system over a vocabulary unique to `salt`; always safe.
fn solve_family(salt: usize) {
    let mut kvars = KVarStore::new();
    let k = kvars.fresh(vec![Sort::Int]);
    let x = Name::intern(&format!("cb_s{salt}"));
    let c = Constraint::forall(
        x,
        Sort::Int,
        Expr::ge(Expr::var(x), Expr::int(salt as i128 % 7)),
        Constraint::conj(vec![
            Constraint::kvar(KVarApp::new(k, vec![Expr::var(x)])),
            Constraint::implies(
                Guard::KVar(KVarApp::new(k, vec![Expr::var(x)])),
                Constraint::pred(Expr::ge(Expr::var(x), Expr::int(salt as i128 % 7)), 0),
            ),
        ]),
    );
    let mut solver = FixpointSolver::new(FixConfig::default());
    assert!(
        solver.solve(&c, &kvars, &SortCtx::new()).is_safe(),
        "safe system failed with bounded caches (salt {salt})"
    );
}

#[test]
fn bounded_caches_hold_cap_evict_and_stay_correct() {
    with_watchdog("cache bounds", 600, || {
        set_hcons_memo_capacity(Some(HCONS_CAP));
        set_cnf_cache_capacity(Some(CNF_CAP));
        set_global_cache_capacity(Some(VERDICT_CAP));

        let handles: Vec<_> = (0..WORKERS)
            .map(|worker| {
                thread::spawn(move || {
                    for round in 0..20 {
                        check_family(worker * 1000 + round);
                        if round % 4 == 0 {
                            solve_family(worker * 1000 + round);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("storm worker panicked");
        }

        // Every cache actually evicted: the storm's distinct vocabularies
        // overflow each cap many times over.
        assert!(
            hcons_memo_evictions() > 0,
            "hcons memos never hit their cap"
        );
        assert!(cnf_cache_evictions() > 0, "the CNF cache never hit its cap");
        assert!(
            global_cache().evictions() > 0,
            "the verdict cache never hit its cap"
        );
        assert!(
            hcons_memo_high_watermark() > 0,
            "the memo high-watermark never moved"
        );

        // Steady-state size holds the cap.  The CNF cache reclaims on every
        // acquisition, so reading its length reports a post-reclaim figure;
        // the verdict cache evicts on insert and may never exceed its cap.
        assert!(
            cnf_cache_len() <= CNF_CAP,
            "CNF cache len {} exceeds its cap {CNF_CAP}",
            cnf_cache_len()
        );
        assert!(
            global_cache().len() <= VERDICT_CAP,
            "verdict cache len {} exceeds its cap {VERDICT_CAP}",
            global_cache().len()
        );
        // The verdict cache is sharded: the configured figure is the *sum*
        // of the per-shard caps (32 divides evenly across the shards), so
        // the effective global capacity is exactly what was requested.
        assert_eq!(
            global_cache().capacity(),
            Some(VERDICT_CAP),
            "the summed shard caps must reproduce the requested global cap"
        );

        // Evicted entries are recomputable: re-checking families from the
        // start of the storm (long since evicted at these caps) yields the
        // same verdicts.
        for salt in 0..4 {
            check_family(salt);
            solve_family(salt);
        }

        set_hcons_memo_capacity(None);
        set_cnf_cache_capacity(None);
        set_global_cache_capacity(None);
    });
}

/// LRU upgrade (PR 9): a verdict that keeps getting hits — the shape of a
/// shared library obligation re-proved by every request of a long-running
/// service — survives a storm of cold single-use entries at the same cap
/// that would have aged it out under the historical FIFO policy after
/// `cap` insertions, hit or no hit.
#[test]
fn hot_entry_survives_cold_storm_at_the_same_cap() {
    use flux_fixpoint::{next_epoch, next_owner, QueryKey, ValidityCache};
    use flux_logic::ExprId;
    use flux_smt::Validity;

    let x = Name::intern("lru_x");
    let fns = flux_fixpoint::intern_fn_ctx(&SortCtx::new());
    let key_of = |n: i128| {
        QueryKey::new(
            fns,
            [(x, Sort::Int)].into_iter().collect(),
            [ExprId::intern(&Expr::ge(Expr::var(x), Expr::int(0)))]
                .into_iter()
                .collect(),
            ExprId::intern(&Expr::ge(Expr::var(x), Expr::int(n))),
        )
    };
    const CAP: usize = 32;
    let (epoch, owner) = (next_epoch(), next_owner());
    let mut cache = ValidityCache::with_capacity_limit(CAP);
    let hot = key_of(-1);
    cache.insert(hot.clone(), Validity::Valid, epoch, owner);
    // 40 caps' worth of cold entries, the hot key touched once per cold
    // insertion — exactly the daemon's steady state of one warm obligation
    // amid per-request garbage.
    for n in 0..(40 * CAP as i128) {
        assert!(
            cache.lookup(&hot).is_some(),
            "hot entry evicted after {n} cold insertions (cap {CAP})"
        );
        cache.insert(key_of(n), Validity::Valid, epoch, owner);
        assert!(cache.len() <= CAP, "cap violated at cold insertion {n}");
    }
    assert!(cache.lookup(&hot).is_some());
    assert!(
        cache.evictions() > 0,
        "the storm must actually have overflowed the cap"
    );
    // A FIFO would have evicted the hot key during the first cap's worth of
    // cold insertions; under LRU the evicted keys are all cold ones.
    assert!(cache.peek(&key_of(0)).is_none(), "cold entries age out");
}

/// Sharded verdict cache (PR 10): under an 8-thread storm over a *private*
/// sharded instance, the summed length never exceeds the requested global
/// cap (the per-shard caps sum to it), every surviving entry still carries
/// the verdict its key was inserted with (no cross-shard aliasing), and
/// re-deriving an evicted key's verdict reproduces the cached figure
/// exactly.
#[test]
fn sharded_verdict_cache_holds_global_cap_under_thread_storm() {
    use flux_fixpoint::{
        intern_fn_ctx, next_epoch, next_owner, QueryKey, ShardedValidityCache, VALIDITY_SHARDS,
    };
    use flux_logic::ExprId;
    use flux_smt::Validity;

    const CAP: usize = 32;
    assert_eq!(
        CAP % VALIDITY_SHARDS,
        0,
        "pick a cap the shards divide evenly, so the sum is exact"
    );
    let cache = ShardedValidityCache::with_global_capacity(Some(CAP));
    assert_eq!(
        cache.capacity(),
        Some(CAP),
        "the global cap is the sum of the per-shard caps"
    );

    let x = Name::intern("shard_storm_x");
    let fns = intern_fn_ctx(&SortCtx::new());
    let key_of = |n: i128| {
        QueryKey::new(
            fns,
            [(x, Sort::Int)].into_iter().collect(),
            [ExprId::intern(&Expr::ge(Expr::var(x), Expr::int(0)))]
                .into_iter()
                .collect(),
            ExprId::intern(&Expr::ge(Expr::var(x), Expr::int(n))),
        )
    };
    // The verdict is a pure function of the key — `x ≥ 0 ⊢ x ≥ n` holds
    // exactly when `n ≤ 0` — so recomputing after an eviction must
    // reproduce the cached figure bit-for-bit.
    let verdict_of = |n: i128| {
        if n <= 0 {
            Validity::Valid
        } else {
            Validity::Invalid(None)
        }
    };

    let (epoch, owner) = (next_epoch(), next_owner());
    thread::scope(|scope| {
        for worker in 0..WORKERS {
            let (cache, key_of, verdict_of) = (&cache, &key_of, &verdict_of);
            scope.spawn(move || {
                for i in 0..100i128 {
                    let n = worker as i128 * 1000 + i - 50;
                    cache.insert(key_of(n), verdict_of(n), epoch, owner);
                    assert!(
                        cache.len() <= CAP,
                        "summed shard length {} exceeded the global cap {CAP}",
                        cache.len()
                    );
                    if let Some(entry) = cache.lookup(&key_of(n)) {
                        assert_eq!(
                            entry.verdict,
                            verdict_of(n),
                            "a shard returned another key's verdict (n = {n})"
                        );
                    }
                }
            });
        }
    });
    assert!(
        cache.evictions() > 0,
        "an 800-insert storm must overflow a 32-entry cap"
    );
    assert!(cache.len() <= CAP, "cap violated at steady state");
    // Recompute-identical: the storm's earliest keys are long evicted;
    // re-deriving and re-inserting them yields the same verdicts.
    for n in [-50i128, -1, 0, 1, 951] {
        cache.insert(key_of(n), verdict_of(n), epoch, owner);
        assert_eq!(
            cache.lookup(&key_of(n)).expect("just inserted").verdict,
            verdict_of(n),
            "an evicted entry recomputed to a different verdict (n = {n})"
        );
    }
}
