//! Concurrency stress tests for the process-global shared state the
//! parallel weakening scheduler leans on: the hash-cons table in
//! `flux-logic`, the CNF/preprocessing cache inside `flux-smt` sessions,
//! and the global verdict cache in `flux-fixpoint`.
//!
//! Every phase runs under a watchdog (`mpsc::recv_timeout`): a deadlock —
//! e.g. a lock-ordering mistake between the hcons table and the CNF cache —
//! fails the test in bounded time instead of hanging the suite.

use flux_fixpoint::{
    global_cache, intern_fn_ctx, next_epoch, next_owner, Constraint, FixConfig, FixpointSolver,
    Guard, KVarApp, KVarStore, QueryKey,
};
use flux_logic::{Expr, ExprId, Name, Sort, SortCtx};
use flux_smt::{Session, SmtConfig, Validity};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

const WORKERS: usize = 8;
/// The whole binary takes ~85 s in debug on a 1-core box (the tests share
/// the core, so one test's wall-clock can approach that figure).  The
/// watchdog exists to catch *deadlocks* — which hang forever — not slow CI
/// runners, so the deadline is an order of magnitude above the measured
/// worst case; it should only ever fire on a genuine hang.
const DEADLINE: Duration = Duration::from_secs(900);

/// Runs `work` on a detached thread and fails the calling test if it
/// neither finishes nor panics within the deadline (a hung worker leaks,
/// but the suite keeps running and reports the failure).
fn with_deadline<F>(what: &str, work: F)
where
    F: FnOnce() + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        work();
        tx.send(()).ok();
    });
    match rx.recv_timeout(DEADLINE) {
        Ok(()) => {
            handle.join().expect("worker panicked after completing");
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The worker died without reporting: propagate its panic.
            handle
                .join()
                .unwrap_or_else(|e| std::panic::resume_unwind(e));
            panic!("{what}: worker disconnected without finishing");
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{what}: exceeded {DEADLINE:?} — deadlock suspected");
        }
    }
}

/// N threads interning overlapping expression families concurrently: ids
/// must be identical across threads (structural equality ⟺ id equality is a
/// global invariant, not a per-thread one) and stable against re-interning.
#[test]
fn hcons_interning_is_stable_under_contention() {
    with_deadline("hcons stress", || {
        // Lock-hold audit: the interner keeps a single global mutex (id
        // stability forbids sharding it), so the storm doubles as its
        // convoying probe.  The counter is process-global and monotone;
        // on a single-core host the threads rarely overlap, so only
        // monotonicity — not growth — can be asserted portably.
        let contentions_before = flux_logic::hcons_contentions();
        let exprs = || -> Vec<Expr> {
            (0..200)
                .map(|i| {
                    let x = Expr::var(Name::intern(&format!("cs_x{}", i % 17)));
                    let bound = Expr::int(i % 23);
                    Expr::and(
                        Expr::ge(x.clone(), bound.clone()),
                        Expr::lt(x + Expr::int(1), bound + Expr::int(40)),
                    )
                })
                .collect()
        };
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                thread::spawn(move || {
                    exprs()
                        .iter()
                        .map(|e| {
                            let id = ExprId::intern(e);
                            // Round-trip under contention: the id must
                            // rebuild the same tree and re-intern to itself.
                            assert_eq!(&id.expr(), e);
                            assert_eq!(ExprId::intern(e), id);
                            id
                        })
                        .collect::<Vec<ExprId>>()
                })
            })
            .collect();
        let all: Vec<Vec<ExprId>> = handles
            .into_iter()
            .map(|h| h.join().expect("interning worker panicked"))
            .collect();
        for ids in &all[1..] {
            assert_eq!(
                ids, &all[0],
                "threads interned the same expressions to different ids"
            );
        }
        // Ids remain stable after the storm.
        let after: Vec<ExprId> = exprs().iter().map(ExprId::intern).collect();
        assert_eq!(after, all[0]);
        let contended = flux_logic::hcons_contentions() - contentions_before;
        println!("hcons table contentions during storm: {contended}");
    });
}

/// N threads hammering the global verdict cache with overlapping keys:
/// inserts never deadlock, a key once inserted always reads back a verdict
/// (idempotent overwrites — every writer stores the same deterministic
/// verdict), and epoch/owner stamps classify hits correctly afterwards.
#[test]
fn global_verdict_cache_survives_overlapping_writers() {
    with_deadline("verdict cache stress", || {
        // The verdict cache is lock-striped: eight writers over 40 keys
        // spread across the shards, and the shard mutexes count the times a
        // caller found its shard held.  Monotone, process-global.
        let contentions_before = global_cache().contentions();
        let fns = intern_fn_ctx(&SortCtx::new());
        let key_of = move |j: usize| {
            let x = Name::intern("cs_vc_x");
            QueryKey::new(
                fns,
                [(x, Sort::Int)].into_iter().collect(),
                [ExprId::intern(&Expr::ge(
                    Expr::var(x),
                    Expr::int(j as i128),
                ))]
                .into_iter()
                .collect(),
                ExprId::intern(&Expr::ge(Expr::var(x), Expr::int(j as i128 - 1))),
            )
        };
        let handles: Vec<_> = (0..WORKERS)
            .map(|worker| {
                thread::spawn(move || {
                    let owner = next_owner();
                    for round in 0..50 {
                        let epoch = next_epoch();
                        for j in 0..40 {
                            let key = key_of((worker + round + j) % 40);
                            global_cache().insert(key.clone(), Validity::Valid, epoch, owner);
                            let entry = global_cache()
                                .lookup(&key)
                                .expect("inserted key must be readable");
                            assert_eq!(
                                entry.verdict,
                                Validity::Valid,
                                "a cached verdict was torn or replaced by a different value"
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("cache worker panicked");
        }
        // Epoch/owner classification on a quiet cache: an entry stamped by
        // one owner at one epoch reads back exactly those stamps.
        let key = key_of(41);
        let (owner, epoch) = (next_owner(), next_epoch());
        global_cache().insert(key.clone(), Validity::Valid, epoch, owner);
        let entry = global_cache().lookup(&key).expect("entry just inserted");
        assert_eq!(entry.owner, owner);
        assert_eq!(entry.epoch, epoch);
        let contended = global_cache().contentions() - contentions_before;
        println!("validity shard contentions during storm: {contended}");
    });
}

/// N threads opening sessions over overlapping hypothesis vocabularies —
/// the path that exercises the shared CNF/preprocessing cache and atom
/// table — must all get correct verdicts, concurrently and afterwards.
#[test]
fn cnf_cache_sessions_agree_under_contention() {
    with_deadline("CNF cache stress", || {
        let contentions_before = flux_smt::cnf_shard_contentions();
        let check_family = |salt: usize| {
            let x = Expr::var(Name::intern("cs_sess_x"));
            let n = Expr::var(Name::intern("cs_sess_n"));
            let mut ctx = SortCtx::new();
            ctx.push(Name::intern("cs_sess_x"), Sort::Int);
            ctx.push(Name::intern("cs_sess_n"), Sort::Int);
            // Overlapping conjunct vocabulary across threads: every session
            // re-encodes the same hypotheses through the global cache.
            let hyps = vec![
                Expr::ge(x.clone(), Expr::int(0)),
                Expr::lt(x.clone(), n.clone()),
                Expr::ge(n.clone(), Expr::int((salt % 3) as i128)),
            ];
            let mut session = Session::assume(SmtConfig::default(), &ctx, &hyps);
            assert!(
                session
                    .check(&Expr::le(x.clone() + Expr::int(1), n.clone()))
                    .is_valid(),
                "valid implication rejected under contention"
            );
            assert!(
                !session.check(&Expr::ge(x.clone(), Expr::int(1))).is_valid(),
                "invalid implication accepted under contention"
            );
        };
        let handles: Vec<_> = (0..WORKERS)
            .map(|worker| {
                thread::spawn(move || {
                    for round in 0..25 {
                        check_family(worker + round);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("session worker panicked");
        }
        // And once more on the warmed cache from this thread.
        check_family(0);
        let contended = flux_smt::cnf_shard_contentions() - contentions_before;
        println!("CNF shard contentions during storm: {contended}");
    });
}

/// N full fixpoint solvers racing on the *same* constraint system: all
/// reach the same result, and afterwards the global cache replays the whole
/// solve for a fresh solver with the hits classified as cross-benchmark.
#[test]
fn racing_solvers_agree_and_seed_xbench_replays() {
    with_deadline("racing solvers", || {
        fn system() -> (Constraint, KVarStore) {
            let mut kvars = KVarStore::new();
            let k = kvars.fresh(vec![Sort::Int]);
            let x = Name::intern("cs_race_x");
            let c = Constraint::forall(
                x,
                Sort::Int,
                Expr::ge(Expr::var(x), Expr::int(5)),
                Constraint::conj(vec![
                    Constraint::kvar(KVarApp::new(k, vec![Expr::var(x)])),
                    Constraint::implies(
                        Guard::KVar(KVarApp::new(k, vec![Expr::var(x)])),
                        Constraint::pred(Expr::gt(Expr::var(x), Expr::int(0)), 0),
                    ),
                ]),
            );
            (c, kvars)
        }
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                thread::spawn(|| {
                    let (c, kvars) = system();
                    let mut solver = FixpointSolver::new(FixConfig {
                        threads: 2,
                        ..FixConfig::default()
                    });
                    solver.solve(&c, &kvars, &SortCtx::new())
                })
            })
            .collect();
        let results: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("racing solver panicked"))
            .collect();
        for r in &results[1..] {
            assert_eq!(r, &results[0], "racing solvers disagreed");
        }
        assert!(results[0].is_safe());
        // The storm left every verdict in the global cache: a fresh solver
        // replays the entire solve, and — its owner id being distinct from
        // all the racers' — classifies the hits as cross-benchmark.
        let (c, kvars) = system();
        let mut fresh = FixpointSolver::with_defaults();
        assert_eq!(fresh.solve(&c, &kvars, &SortCtx::new()), results[0]);
        assert_eq!(
            fresh.stats.cache_misses, 0,
            "every query of the replayed solve should be cached, stats: {:?}",
            fresh.stats
        );
        assert!(
            fresh.stats.xbench_hits > 0,
            "replayed hits must classify as cross-benchmark, stats: {:?}",
            fresh.stats
        );
    });
}
