//! Workspace umbrella crate for the Flux reproduction.
//!
//! All functionality lives in the member crates; this crate re-exports the
//! top-level `flux` API so the examples and integration tests in this
//! repository have a single import path.  See `README.md` for an overview
//! and `DESIGN.md` for the crate map.

#![warn(missing_docs)]

pub use flux::{
    benchmark, benchmarks, library, render_query_stats, render_table1, run_benchmark, run_table1,
    verify_source, Benchmark, Mode, QueryStats, TableRow, VerifyConfig, VerifyOutcome,
};
