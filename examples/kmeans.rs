//! The k-means fragments from §2.3 of the paper: vectors indexed by their
//! length, a collection of centres as a vector of vectors, and quantified
//! invariants obtained for free from polymorphism.
//!
//! Run with: `cargo run --example kmeans`

fn main() {
    let benchmark = flux::benchmark("kmeans").expect("kmeans is part of the suite");
    let config = flux::VerifyConfig::default();
    let row = flux::run_benchmark(&benchmark, &config);

    println!("== kmeans under Flux ==");
    println!(
        "  LOC {}  spec lines {}  invariant lines {}  time {:?}  safe {}",
        row.flux.loc, row.flux.spec_lines, row.flux.annot_lines, row.flux.time, row.flux.safe
    );
    println!("== kmeans under the program-logic baseline ==");
    println!(
        "  LOC {}  spec lines {}  invariant lines {}  time {:?}  safe {}",
        row.baseline.loc,
        row.baseline.spec_lines,
        row.baseline.annot_lines,
        row.baseline.time,
        row.baseline.safe
    );
    println!(
        "baseline annotation overhead: {}% of LOC",
        row.baseline_annot_percent()
    );
    assert!(row.flux.safe);
    assert_eq!(row.flux.annot_lines, 0);
}
