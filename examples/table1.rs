//! Regenerates the paper's Table 1 from the examples directory (the same
//! harness as `cargo run -p flux-bench --bin table1`).
//!
//! Run with: `cargo run --release --example table1`

fn main() {
    let rows = flux::run_table1(&flux::VerifyConfig::default());
    println!("{}", flux::render_table1(&rows));
}
