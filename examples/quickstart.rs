//! Quickstart: verify the paper's introductory examples (Fig. 1 and Fig. 2)
//! with the Flux pipeline and print the per-function results.
//!
//! Run with: `cargo run --example quickstart`

const SRC: &str = r#"
#[flux::sig(fn(i32[@n]) -> bool[n > 0])]
fn is_pos(n: i32) -> bool {
    if n > 0 { true } else { false }
}

#[flux::sig(fn(i32[@x]) -> i32{v: v >= x && v >= 0})]
fn abs(x: i32) -> i32 {
    if x < 0 { -x } else { x }
}

#[flux::sig(fn(x: &mut nat))]
fn decr(x: &mut i32) {
    let y = *x;
    if y > 0 {
        *x = y - 1;
    }
}

#[flux::sig(fn(x: &strg i32[@n]) ensures *x: i32[n + 1])]
fn incr(x: &mut i32) {
    *x += 1;
}

#[flux::sig(fn() -> i32[2])]
fn use_incr() -> i32 {
    let mut x = 1;
    incr(&mut x);
    x
}
"#;

fn main() {
    let outcome = flux::verify_source(SRC, flux::Mode::Flux, &flux::VerifyConfig::default())
        .expect("the quickstart program is well-formed");
    println!("functions verified : {}", outcome.functions);
    println!("safe               : {}", outcome.safe);
    println!("verification time  : {:?}", outcome.time);
    println!(
        "loop invariants    : {} (liquid inference needs none)",
        outcome.annot_lines
    );
    for error in &outcome.errors {
        println!("{error}");
    }
    assert!(outcome.safe);
}
