//! The Wave-style sandboxing case study: memory accesses granted to the
//! guest must stay within the sandbox region, expressed as refined
//! signatures and checked by Flux without loop invariants.
//!
//! Run with: `cargo run --example sandbox`

fn main() {
    let benchmark = flux::benchmark("wave").expect("wave is part of the suite");
    let config = flux::VerifyConfig::default();
    let outcome = flux::verify_source(benchmark.flux_src, flux::Mode::Flux, &config)
        .expect("the wave sources are well-formed");
    println!("wave sandbox fragments: {} functions", outcome.functions);
    println!("  verified: {}", outcome.safe);
    println!("  time:     {:?}", outcome.time);
    for error in &outcome.errors {
        println!("{error}");
    }

    // A deliberately broken variant: dropping the length precondition makes
    // the region read unverifiable, demonstrating that the checks are real.
    let broken = r#"
#[flux::sig(fn(mem: &RVec<i32>[@memsize], usize, usize) -> i32)]
fn read_region(mem: &RVec<i32>, ptr: usize, len: usize) -> i32 {
    let mut sum = 0;
    let mut i = 0;
    while i < len {
        sum = sum + mem.get(ptr + i);
        i += 1;
    }
    sum
}
"#;
    let bad = flux::verify_source(broken, flux::Mode::Flux, &config).unwrap();
    println!("broken variant rejected: {}", !bad.safe);
    assert!(!bad.safe);
}
